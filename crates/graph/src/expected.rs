//! Context distributions and exact expected cost `C[Θ] = E[c(Θ, I)]`.
//!
//! Two distribution families cover everything the paper needs:
//!
//! * [`FiniteDistribution`] — an explicit weighted set of contexts (the
//!   paper's Section-2 example is "60% instructor(russ), 15%
//!   instructor(manolis), 25% instructor(fred)", i.e. three context
//!   classes with weights 0.6/0.15/0.25). Expected cost is an exact
//!   weighted sum.
//! * [`IndependentModel`] — each arc is blocked independently with its
//!   own probability (the assumption under which `Υ_AOT` is defined,
//!   footnote 8). Expected cost is computed *exactly* on trees by a
//!   per-arc reachability recursion (no Monte-Carlo error), with an
//!   exhaustive enumerator as a cross-check.
//!
//! Both implement [`ContextDistribution`], the oracle interface PIB and
//! PAO sample from.

use crate::context::{cost, Context};
use crate::error::GraphError;
use crate::graph::{ArcId, ArcKind, InferenceGraph, NodeId};
use crate::strategy::Strategy;
use rand::Rng;

/// A source of i.i.d. contexts with a computable expected cost — the
/// paper's "stationary distribution" of query-processing contexts.
pub trait ContextDistribution {
    /// Draws one context.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> Context;

    /// Exact expected cost `C[Θ]` of a strategy under this distribution.
    fn expected_cost(&self, g: &InferenceGraph, s: &Strategy) -> f64;

    /// `ρ(e)`: the probability, maximized over strategies, of reaching
    /// experiment `e` (Definition 2). Since any strategy reaches `e` only
    /// when every arc of `Π(e)` is open, and the strategy that aims
    /// straight at `e` reaches it exactly then, this equals
    /// `Pr[Π(e) all open]`.
    fn rho(&self, g: &InferenceGraph, e: ArcId) -> f64;
}

/// An explicit weighted set of context classes.
#[derive(Debug, Clone)]
pub struct FiniteDistribution {
    items: Vec<(Context, f64)>,
    cumulative: Vec<f64>,
}

impl FiniteDistribution {
    /// Builds a distribution from `(context, weight)` pairs; weights are
    /// normalized.
    ///
    /// # Errors
    /// [`GraphError::BadProbability`] if any weight is negative or the
    /// total is zero/non-finite.
    pub fn new(items: Vec<(Context, f64)>) -> Result<Self, GraphError> {
        let total: f64 = items.iter().map(|(_, w)| *w).sum();
        if total <= 0.0 || total.is_nan() || !total.is_finite() {
            return Err(GraphError::BadProbability(total));
        }
        if let Some(&(_, w)) = items.iter().find(|(_, w)| *w < 0.0 || !w.is_finite()) {
            return Err(GraphError::BadProbability(w));
        }
        let items: Vec<(Context, f64)> =
            items.into_iter().map(|(c, w)| (c, w / total)).collect();
        let mut cumulative = Vec::with_capacity(items.len());
        let mut acc = 0.0;
        for (_, w) in &items {
            acc += w;
            cumulative.push(acc);
        }
        Ok(Self { items, cumulative })
    }

    /// The normalized `(context, weight)` pairs.
    pub fn items(&self) -> &[(Context, f64)] {
        &self.items
    }
}

impl ContextDistribution for FiniteDistribution {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> Context {
        let u: f64 = rng.gen();
        let idx = self.cumulative.partition_point(|&c| c < u).min(self.items.len() - 1);
        self.items[idx].0.clone()
    }

    fn expected_cost(&self, g: &InferenceGraph, s: &Strategy) -> f64 {
        self.items.iter().map(|(ctx, w)| w * cost(g, s, ctx)).sum()
    }

    fn rho(&self, g: &InferenceGraph, e: ArcId) -> f64 {
        let path = g.root_path(e);
        self.items
            .iter()
            .filter(|(ctx, _)| path.iter().all(|&a| !ctx.is_blocked(a)))
            .map(|(_, w)| *w)
            .sum()
    }
}

/// Independent per-arc blocking: arc `a` is open (traversable) with
/// probability `probs[a]`, independently of all other arcs.
#[derive(Debug, Clone, PartialEq)]
pub struct IndependentModel {
    probs: Vec<f64>,
}

impl IndependentModel {
    /// Every arc open with probability `p` (reductions included).
    ///
    /// # Errors
    /// [`GraphError::BadProbability`] unless `p ∈ [0, 1]`.
    pub fn uniform(g: &InferenceGraph, p: f64) -> Result<Self, GraphError> {
        check_prob(p)?;
        Ok(Self { probs: vec![p; g.arc_count()] })
    }

    /// Reductions always open; retrieval `i` (in [`InferenceGraph::retrievals`]
    /// order) succeeds with probability `retrieval_probs[i]` — the
    /// paper's success-probability vector `p = ⟨p₁, …, pₙ⟩`.
    ///
    /// # Errors
    /// [`GraphError::BadProbability`] on out-of-range probabilities, or
    /// [`GraphError::InvalidStrategy`] if the count does not match the
    /// number of retrievals.
    pub fn from_retrieval_probs(
        g: &InferenceGraph,
        retrieval_probs: &[f64],
    ) -> Result<Self, GraphError> {
        let retrievals: Vec<ArcId> = g.retrievals().collect();
        if retrievals.len() != retrieval_probs.len() {
            return Err(GraphError::InvalidStrategy(format!(
                "{} retrieval probabilities for {} retrievals",
                retrieval_probs.len(),
                retrievals.len()
            )));
        }
        let mut probs = vec![1.0; g.arc_count()];
        for (&a, &p) in retrievals.iter().zip(retrieval_probs) {
            check_prob(p)?;
            probs[a.index()] = p;
        }
        Ok(Self { probs })
    }

    /// Builds from a per-arc function.
    ///
    /// # Errors
    /// [`GraphError::BadProbability`] on out-of-range values.
    pub fn from_fn(
        g: &InferenceGraph,
        mut f: impl FnMut(ArcId) -> f64,
    ) -> Result<Self, GraphError> {
        let probs: Vec<f64> = g.arc_ids().map(&mut f).collect();
        for &p in &probs {
            check_prob(p)?;
        }
        Ok(Self { probs })
    }

    /// Open probability of `a`.
    pub fn prob(&self, a: ArcId) -> f64 {
        self.probs[a.index()]
    }

    /// Updates the open probability of `a`.
    ///
    /// # Errors
    /// [`GraphError::BadProbability`] unless `p ∈ [0, 1]`.
    pub fn set_prob(&mut self, a: ArcId, p: f64) -> Result<(), GraphError> {
        check_prob(p)?;
        self.probs[a.index()] = p;
        Ok(())
    }

    /// The success probabilities of the retrievals, in
    /// [`InferenceGraph::retrievals`] order (the vector handed to `Υ`).
    pub fn retrieval_probs(&self, g: &InferenceGraph) -> Vec<f64> {
        g.retrievals().map(|a| self.prob(a)).collect()
    }

    /// Arcs with genuinely probabilistic status (`0 < p < 1`) — the
    /// paper's "probabilistic experiments" of Theorem 3.
    pub fn experiments(&self, g: &InferenceGraph) -> Vec<ArcId> {
        g.arc_ids().filter(|&a| self.prob(a) > 0.0 && self.prob(a) < 1.0).collect()
    }

    /// Exact expected cost by exhaustive enumeration over the blocked
    /// status of every probabilistic arc. Exponential; used as the
    /// cross-check oracle and for non-tree graphs.
    ///
    /// # Panics
    /// Panics if more than 24 arcs are probabilistic.
    pub fn expected_cost_exhaustive(&self, g: &InferenceGraph, s: &Strategy) -> f64 {
        let vars = self.experiments(g);
        assert!(vars.len() <= 24, "too many probabilistic arcs for exhaustive enumeration");
        let mut total = 0.0;
        for mask in 0u32..(1 << vars.len()) {
            let mut ctx = Context::from_fn(g, |a| self.prob(a) == 0.0);
            let mut w = 1.0;
            for (bit, &a) in vars.iter().enumerate() {
                let open = mask & (1 << bit) != 0;
                ctx.set_blocked(a, !open);
                w *= if open { self.prob(a) } else { 1.0 - self.prob(a) };
            }
            if w > 0.0 {
                total += w * cost(g, s, &ctx);
            }
        }
        total
    }
}

fn check_prob(p: f64) -> Result<(), GraphError> {
    if (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(GraphError::BadProbability(p))
    }
}

impl ContextDistribution for IndependentModel {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> Context {
        let blocked: Vec<ArcId> = self
            .probs
            .iter()
            .enumerate()
            .filter(|(_, &p)| rng.gen::<f64>() >= p)
            .map(|(i, _)| ArcId(i as u32))
            .collect();
        // Build directly (cannot use Context::with_blocked without &graph).
        let mut ctx = Context::from_raw(self.probs.len());
        for a in blocked {
            ctx.set_blocked(a, true);
        }
        ctx
    }

    /// Exact expected cost on a tree:
    /// `C[Θ] = Σ_k f(a_k) · Pr[a_k is attempted]`, where
    /// `Pr[attempted] = Pr[Π(a_k) all open] · Pr[no earlier retrieval
    /// succeeds | Π(a_k) open]`, and the conditional no-success
    /// probability is computed by a product recursion over the tree with
    /// the ancestor arcs forced open.
    ///
    /// # Panics
    /// Panics if the graph is not a tree (use
    /// [`IndependentModel::expected_cost_exhaustive`] for DAGs).
    fn expected_cost(&self, g: &InferenceGraph, s: &Strategy) -> f64 {
        assert!(g.is_tree(), "exact expected cost requires a tree; use the exhaustive method");
        // earlier[a] = true once a retrieval arc has been passed in Θ-order.
        let mut earlier = vec![false; g.arc_count()];
        let mut forced = vec![false; g.arc_count()];
        let mut total = 0.0;
        for &a in s.arcs() {
            // Probability the root path of `a` is fully open.
            let path = g.root_path(a);
            let p_path: f64 = path.iter().map(|&b| self.prob(b)).product();
            if p_path > 0.0 {
                for &b in &path {
                    forced[b.index()] = true;
                }
                let q = no_success_below(g, g.root(), &forced, &earlier, &self.probs);
                for &b in &path {
                    forced[b.index()] = false;
                }
                total += g.arc(a).cost * p_path * q;
            }
            if g.arc(a).kind == ArcKind::Retrieval {
                earlier[a.index()] = true;
            }
        }
        total
    }

    fn rho(&self, g: &InferenceGraph, e: ArcId) -> f64 {
        g.root_path(e).iter().map(|&b| self.prob(b)).product()
    }
}

/// `Pr[no retrieval marked `earlier` in the subtree under `node`
/// succeeds]`, with arcs in `forced` conditioned open.
fn no_success_below(
    g: &InferenceGraph,
    node: NodeId,
    forced: &[bool],
    earlier: &[bool],
    probs: &[f64],
) -> f64 {
    let mut acc = 1.0;
    for &c in g.children(node) {
        let p = if forced[c.index()] { 1.0 } else { probs[c.index()] };
        match g.arc(c).kind {
            ArcKind::Retrieval => {
                if earlier[c.index()] {
                    acc *= 1.0 - p;
                }
            }
            ArcKind::Reduction => {
                let sub = no_success_below(g, g.arc(c).to, forced, earlier, probs);
                acc *= (1.0 - p) + p * sub;
            }
        }
        if acc == 0.0 {
            return 0.0;
        }
    }
    acc
}

impl Context {
    /// Internal: an all-open context over `n` arcs (used by samplers that
    /// hold no graph reference).
    pub(crate) fn from_raw(n: usize) -> Self {
        Self::from_parts(vec![false; n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g_a() -> InferenceGraph {
        let mut b = GraphBuilder::new("instructor(κ)");
        let root = b.root();
        let (_, prof) = b.reduction(root, "R_p", 1.0, "prof(κ)");
        b.retrieval(prof, "D_p", 1.0);
        let (_, grad) = b.reduction(root, "R_g", 1.0, "grad(κ)");
        b.retrieval(grad, "D_g", 1.0);
        b.finish().unwrap()
    }

    fn g_b() -> InferenceGraph {
        let mut b = GraphBuilder::new("G(κ)");
        let root = b.root();
        let (_, a) = b.reduction(root, "R_ga", 1.0, "A(κ)");
        b.retrieval(a, "D_a", 1.0);
        let (_, s) = b.reduction(root, "R_gs", 1.0, "S(κ)");
        let (_, bb) = b.reduction(s, "R_sb", 1.0, "B(κ)");
        b.retrieval(bb, "D_b", 1.0);
        let (_, t) = b.reduction(s, "R_st", 1.0, "T(κ)");
        let (_, c) = b.reduction(t, "R_tc", 1.0, "C(κ)");
        b.retrieval(c, "D_c", 1.0);
        let (_, d) = b.reduction(t, "R_td", 1.0, "D(κ)");
        b.retrieval(d, "D_d", 1.0);
        b.finish().unwrap()
    }

    fn strat(g: &InferenceGraph, labels: &[&str]) -> Strategy {
        Strategy::from_arcs(g, labels.iter().map(|l| g.arc_by_label(l).unwrap()).collect())
            .unwrap()
    }

    /// The Section-2 query mix as a finite distribution over blocked-arc
    /// classes: 60% russ (prof succeeds), 15% manolis (grad succeeds),
    /// 25% fred (neither).
    fn section2(g: &InferenceGraph) -> FiniteDistribution {
        let dp = g.arc_by_label("D_p").unwrap();
        let dg = g.arc_by_label("D_g").unwrap();
        FiniteDistribution::new(vec![
            (Context::with_blocked(g, &[dg]), 0.60),
            (Context::with_blocked(g, &[dp]), 0.15),
            (Context::with_blocked(g, &[dp, dg]), 0.25),
        ])
        .unwrap()
    }

    #[test]
    fn section2_expected_costs() {
        // Corrected Section-2 arithmetic (see DESIGN.md erratum):
        // prof-first = 2 + (1-0.6)·2 = 2.8, grad-first = 2 + (1-0.15)·2 = 3.7.
        let g = g_a();
        let dist = section2(&g);
        let prof_first = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let grad_first = strat(&g, &["R_g", "D_g", "R_p", "D_p"]);
        assert!((dist.expected_cost(&g, &prof_first) - 2.8).abs() < 1e-12);
        assert!((dist.expected_cost(&g, &grad_first) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn independent_model_matches_finite_on_g_a() {
        // With independent retrieval successes p_p=0.6, p_g=0.15, the
        // expected cost of prof-first is 2 + (1-0.6)·2 = 2.8 (since grad
        // path cost is paid exactly when prof fails).
        let g = g_a();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.6, 0.15]).unwrap();
        let prof_first = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let grad_first = strat(&g, &["R_g", "D_g", "R_p", "D_p"]);
        assert!((m.expected_cost(&g, &prof_first) - 2.8).abs() < 1e-12);
        assert!((m.expected_cost(&g, &grad_first) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn pao_example_probabilities() {
        // Section 4: "p = ⟨p_p, p_g⟩ = ⟨0.2, 0.6⟩ … the optimal strategy
        // for that graph (here, Θ₂)" — grad-first must be cheaper.
        let g = g_a();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.2, 0.6]).unwrap();
        let prof_first = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let grad_first = strat(&g, &["R_g", "D_g", "R_p", "D_p"]);
        assert!(m.expected_cost(&g, &grad_first) < m.expected_cost(&g, &prof_first));
    }

    #[test]
    fn exact_matches_exhaustive_on_g_b() {
        let g = g_b();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.3, 0.5, 0.2, 0.7]).unwrap();
        for s in crate::strategy::enumerate_dfs(&g, 100).unwrap() {
            let exact = m.expected_cost(&g, &s);
            let brute = m.expected_cost_exhaustive(&g, &s);
            assert!(
                (exact - brute).abs() < 1e-9,
                "strategy {}: exact {exact} vs exhaustive {brute}",
                s.display(&g)
            );
        }
    }

    #[test]
    fn exact_handles_blockable_reductions() {
        let g = g_b();
        // Make two reductions probabilistic too (Theorem 3 setting).
        let mut m = IndependentModel::uniform(&g, 1.0).unwrap();
        for (label, p) in
            [("D_a", 0.3), ("D_b", 0.5), ("D_c", 0.2), ("D_d", 0.7), ("R_gs", 0.8), ("R_tc", 0.6)]
        {
            m.set_prob(g.arc_by_label(label).unwrap(), p).unwrap();
        }
        for s in crate::strategy::enumerate_dfs(&g, 100).unwrap() {
            let exact = m.expected_cost(&g, &s);
            let brute = m.expected_cost_exhaustive(&g, &s);
            assert!(
                (exact - brute).abs() < 1e-9,
                "strategy {}: exact {exact} vs exhaustive {brute}",
                s.display(&g)
            );
        }
    }

    #[test]
    fn exact_handles_interleaved_strategies() {
        let g = g_b();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.3, 0.5, 0.2, 0.7]).unwrap();
        let s = strat(
            &g,
            &["R_gs", "R_st", "R_tc", "D_c", "R_ga", "D_a", "R_td", "D_d", "R_sb", "D_b"],
        );
        let exact = m.expected_cost(&g, &s);
        let brute = m.expected_cost_exhaustive(&g, &s);
        assert!((exact - brute).abs() < 1e-9);
    }

    #[test]
    fn sampling_agrees_with_exact_cost() {
        let g = g_a();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.6, 0.15]).unwrap();
        let s = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mc: f64 = (0..n).map(|_| cost(&g, &s, &m.sample(&mut rng))).sum::<f64>() / n as f64;
        assert!((mc - 2.8).abs() < 0.02, "Monte Carlo {mc} vs exact 2.8");
    }

    #[test]
    fn finite_sampling_respects_weights() {
        let g = g_a();
        let dist = section2(&g);
        let dp = g.arc_by_label("D_p").unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut dp_open = 0u32;
        for _ in 0..n {
            if !dist.sample(&mut rng).is_blocked(dp) {
                dp_open += 1;
            }
        }
        let freq = f64::from(dp_open) / n as f64;
        assert!((freq - 0.6).abs() < 0.01, "D_p open frequency {freq} ≈ 0.6");
    }

    #[test]
    fn rho_is_ancestor_product() {
        let g = g_b();
        let mut m = IndependentModel::uniform(&g, 1.0).unwrap();
        m.set_prob(g.arc_by_label("R_gs").unwrap(), 0.8).unwrap();
        m.set_prob(g.arc_by_label("R_st").unwrap(), 0.5).unwrap();
        let dc = g.arc_by_label("D_c").unwrap();
        // Π(D_c) = {R_gs, R_st, R_tc}; ρ = 0.8 · 0.5 · 1.0
        assert!((m.rho(&g, dc) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rho_finite_distribution() {
        let g = g_a();
        let dist = section2(&g);
        let dp = g.arc_by_label("D_p").unwrap();
        // R_p never blocked in any class → ρ(D_p) = 1.
        assert!((dist.rho(&g, dp) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_paths_cost_nothing_beyond_block() {
        let g = g_a();
        let mut m = IndependentModel::from_retrieval_probs(&g, &[0.5, 0.5]).unwrap();
        m.set_prob(g.arc_by_label("R_p").unwrap(), 0.0).unwrap();
        let s = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        // R_p always blocked: pay 1, skip D_p, then R_g + D_g (2) always.
        // = 1 + 2 = 3.
        let c = m.expected_cost(&g, &s);
        assert!((c - 3.0).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn bad_probability_rejected() {
        let g = g_a();
        assert!(matches!(
            IndependentModel::uniform(&g, 1.5),
            Err(GraphError::BadProbability(_))
        ));
        assert!(matches!(
            IndependentModel::from_retrieval_probs(&g, &[0.5, -0.1]),
            Err(GraphError::BadProbability(_))
        ));
        assert!(matches!(
            IndependentModel::from_retrieval_probs(&g, &[0.5]),
            Err(GraphError::InvalidStrategy(_))
        ));
    }

    #[test]
    fn finite_distribution_normalizes() {
        let g = g_a();
        let dist = FiniteDistribution::new(vec![
            (Context::all_open(&g), 3.0),
            (Context::all_blocked(&g), 1.0),
        ])
        .unwrap();
        assert!((dist.items()[0].1 - 0.75).abs() < 1e-12);
        assert!(FiniteDistribution::new(vec![]).is_err());
        assert!(FiniteDistribution::new(vec![(Context::all_open(&g), -1.0)]).is_err());
    }

    proptest::proptest! {
        /// The exact tree recursion equals exhaustive enumeration for
        /// random probability assignments on G_B.
        #[test]
        fn exact_equals_exhaustive(probs in proptest::collection::vec(0.0f64..=1.0, 10)) {
            let g = g_b();
            let m = IndependentModel::from_fn(&g, |a| probs[a.index()]).unwrap();
            let s = Strategy::left_to_right(&g);
            let exact = m.expected_cost(&g, &s);
            let brute = m.expected_cost_exhaustive(&g, &s);
            proptest::prop_assert!((exact - brute).abs() < 1e-9, "{} vs {}", exact, brute);
        }
    }
}
