//! Canonical metric-name constants for cross-crate telemetry.
//!
//! Most instrumented call sites live next to the subsystem they
//! measure and use string literals in place (`"graph.batch.lanes"`,
//! `"core.pib.climbs"`, …). Names that cross a crate boundary — emitted
//! in one crate, asserted on or surfaced by another — live here instead,
//! so producers and consumers cannot drift apart silently. The serving
//! layer is the first such consumer: `qpl-serve` emits these and its
//! `stats` endpoint (plus `bench_serve` and the CI smoke) read them back
//! out of a [`JsonSnapshot`](crate::JsonSnapshot).

/// Names emitted by the `qpl-serve` executor thread.
pub mod serve {
    /// Counter: query lanes executed (one per served query, batch or
    /// single).
    pub const QUERIES: &str = "serve.queries";
    /// Counter: 64-lane planes executed.
    pub const BATCHES: &str = "serve.batches";
    /// Counter: requests refused with an `overloaded` response by the
    /// admission controller.
    pub const SHED: &str = "serve.shed";
    /// Counter: lanes that failed classification (unparsable query or
    /// form mismatch) and got a per-lane error instead of an answer.
    pub const ERRORS: &str = "serve.errors";
    /// Counter: strategy climbs accepted by the online adaptation loop.
    pub const CLIMBS: &str = "serve.climbs";
    /// Value: occupied fraction of each executed plane's lane
    /// capacity (1.0 = every lane of a width × 64-lane plane full).
    pub const BATCH_FILL: &str = "serve.batch_fill";
    /// Value: width (in 64-lane words: 1/2/4/8) of each executed
    /// plane — the load-adaptive plane-width distribution.
    pub const PLANE_WIDTH: &str = "serve.plane_width";
    /// Span: wall-clock time of one plane execution (classify + run +
    /// respond).
    pub const EXEC: &str = "serve.exec";
    /// Value: per-request service time in microseconds (enqueue →
    /// response rendered).
    pub const SERVICE_US: &str = "serve.service_us";
    /// Counter: locally accepted strategy climbs this shard published
    /// to its peers via the strategy board.
    pub const SHARD_PUBLISHED: &str = "serve.shard.published";
    /// Counter: published strategies this shard adopted from a peer
    /// (fingerprint differed from its current program).
    pub const SHARD_ADOPTIONS: &str = "serve.shard.adoptions";
    /// Counter: jobs admitted at a non-home shard because the steered
    /// shard's queue was full (least-loaded fallback).
    pub const SHARD_STEER_FALLBACKS: &str = "serve.shard.steer_fallbacks";
    /// Counter: KB deltas applied by this shard (one per `update`
    /// request, regardless of how many facts it carried).
    pub const KB_DELTA_APPLIED: &str = "serve.kb.delta.applied";
    /// Counter: facts inserted by `update` requests (changed inserts
    /// only — re-asserting a present fact does not count).
    pub const KB_DELTA_INSERTED: &str = "serve.kb.delta.inserted";
    /// Counter: facts retracted by `update` requests (changed retracts
    /// only — retracting an absent fact does not count).
    pub const KB_DELTA_RETRACTED: &str = "serve.kb.delta.retracted";
}

/// Names shared by the cache layers (`qpl-engine` caches and their
/// serve-side consumers).
pub mod cache {
    /// Counter: cache entries invalidated *selectively* — dropped or
    /// repaired because a KB delta's dependency footprint intersected
    /// theirs, rather than by a wholesale generation flush.
    pub const SELECTIVE_INVALIDATIONS: &str = "cache.selective_invalidations";
}

/// Names emitted by the query planners: the statistics-free greedy
/// orderer (`qpl-core`) and the magic-set/SIP rewriter (`qpl-datalog`
/// via its `qpl-engine` driver). Consumed by `qpl_report`'s
/// schema-checked snapshot and the CI gates.
pub mod plan {
    /// Counter: wall-clock microseconds spent planning one greedy
    /// strategy (summed over calls; the per-call budget is < 1 ms,
    /// asserted in `bench_fourway`).
    pub const GREEDY_MICROS: &str = "plan.greedy.micros";
    /// Counter: rules in the magic-rewritten program (adorned rules +
    /// magic demand rules + EDB bridges), summed over rewrites.
    pub const MAGIC_RULES_GENERATED: &str = "plan.magic.rules_generated";
}

/// Names emitted by the bottom-up evaluators.
pub mod eval {
    /// Counter: facts the magic-rewritten fixpoint did *not* derive
    /// relative to unrewritten semi-naive saturation of the same
    /// query (full-model derivations minus magic derivations).
    pub const MAGIC_FACTS_PRUNED: &str = "eval.magic.facts_pruned";
}

/// Names emitted by the durability layer (`qpl-store` via its
/// `qpl-serve` owner, shard 0). Consumed by the `stats` endpoint's
/// merged metrics snapshot and the CI kill-restart smoke.
pub mod store {
    /// Counter: records appended to the write-ahead log (KB deltas +
    /// strategy fingerprints).
    pub const WAL_APPENDS: &str = "store.wal.appends";
    /// Counter: group-commit barriers issued (one per control batch
    /// that journaled at least one record).
    pub const WAL_COMMITS: &str = "store.wal.commits";
    /// Counter: checkpoints written (snapshot + WAL truncation).
    pub const CHECKPOINTS: &str = "store.checkpoints";
    /// Counter: WAL records replayed during recovery at startup.
    pub const RECOVERY_REPLAYED: &str = "store.recovery.records_replayed";
    /// Counter: store I/O failures that flipped the server into
    /// degraded mode (updates shed, reads still served).
    pub const DEGRADED: &str = "store.degraded";
}

/// Names emitted by the observability runtime about itself.
pub mod obs {
    /// Counter: events silently discarded by a bounded sink at its
    /// capacity cap (summed across merged sinks).
    pub const EVENTS_DROPPED: &str = "obs.events_dropped";
}

#[cfg(test)]
mod tests {
    #[test]
    fn serve_names_are_unique_and_prefixed() {
        let all = [
            super::serve::QUERIES,
            super::serve::BATCHES,
            super::serve::SHED,
            super::serve::ERRORS,
            super::serve::CLIMBS,
            super::serve::BATCH_FILL,
            super::serve::PLANE_WIDTH,
            super::serve::EXEC,
            super::serve::SERVICE_US,
            super::serve::SHARD_PUBLISHED,
            super::serve::SHARD_ADOPTIONS,
            super::serve::SHARD_STEER_FALLBACKS,
            super::serve::KB_DELTA_APPLIED,
            super::serve::KB_DELTA_INSERTED,
            super::serve::KB_DELTA_RETRACTED,
        ];
        for (i, a) in all.iter().enumerate() {
            assert!(a.starts_with("serve."), "{a} must carry the subsystem prefix");
            assert!(!all[i + 1..].contains(a), "duplicate name {a}");
        }
    }

    #[test]
    fn cross_module_names_are_prefixed_by_their_subsystem() {
        assert!(super::cache::SELECTIVE_INVALIDATIONS.starts_with("cache."));
        assert!(super::obs::EVENTS_DROPPED.starts_with("obs."));
        assert!(super::plan::GREEDY_MICROS.starts_with("plan."));
        assert!(super::plan::MAGIC_RULES_GENERATED.starts_with("plan."));
        assert!(super::eval::MAGIC_FACTS_PRUNED.starts_with("eval."));
    }

    #[test]
    fn store_names_are_unique_and_prefixed() {
        let all = [
            super::store::WAL_APPENDS,
            super::store::WAL_COMMITS,
            super::store::CHECKPOINTS,
            super::store::RECOVERY_REPLAYED,
            super::store::DEGRADED,
        ];
        for (i, a) in all.iter().enumerate() {
            assert!(a.starts_with("store."), "{a} must carry the subsystem prefix");
            assert!(!all[i + 1..].contains(a), "duplicate name {a}");
        }
    }

    #[test]
    fn planner_names_are_unique() {
        let all = [
            super::plan::GREEDY_MICROS,
            super::plan::MAGIC_RULES_GENERATED,
            super::eval::MAGIC_FACTS_PRUNED,
        ];
        for (i, a) in all.iter().enumerate() {
            assert!(!all[i + 1..].contains(a), "duplicate name {a}");
        }
    }
}
