//! Substitutions and syntactic unification for function-free terms.
//!
//! Because the language is function-free, unification is simple: a
//! binding maps a variable to a constant or to another variable, and
//! resolution walks variable chains. No occurs check is needed (there are
//! no compound terms to create cycles through), but variable→variable
//! chains are followed iteratively.

use crate::term::{Atom, Term, Var};
use std::collections::HashMap;

/// A triangular substitution: variable → term, resolved by walking.
///
/// # Examples
/// ```
/// use qpl_datalog::{Substitution, Term, Var};
/// let mut s = Substitution::new();
/// s.bind(Var(0), Term::Var(Var(1)));
/// // Var(0) resolves through Var(1); binding Var(1) resolves both.
/// assert_eq!(s.resolve(Term::Var(Var(0))), Term::Var(Var(1)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    bindings: HashMap<Var, Term>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Binds `v` to `t`.
    ///
    /// # Panics
    /// In debug builds, panics on the self-binding `v ↦ v`, which would
    /// make [`resolve`](Self::resolve) loop.
    pub fn bind(&mut self, v: Var, t: Term) {
        debug_assert!(t != Term::Var(v), "self-binding {v:?}");
        self.bindings.insert(v, t);
    }

    /// Follows variable chains until a constant or unbound variable.
    pub fn resolve(&self, mut t: Term) -> Term {
        loop {
            match t {
                Term::Const(_) => return t,
                Term::Var(v) => match self.bindings.get(&v) {
                    Some(&next) => t = next,
                    None => return t,
                },
            }
        }
    }

    /// Applies the substitution to every argument of `atom`.
    pub fn apply(&self, atom: &Atom) -> Atom {
        Atom::new(atom.predicate, atom.args.iter().map(|&t| self.resolve(t)).collect())
    }

    /// Raw binding for `v` (unwalked), if any.
    pub fn get(&self, v: Var) -> Option<Term> {
        self.bindings.get(&v).copied()
    }
}

/// Unifies two terms under `sub`, extending it in place on success.
/// Returns `false` (leaving `sub` possibly partially extended — callers
/// clone first, as [`unify_atoms`] does) when the terms clash.
pub fn unify_terms(sub: &mut Substitution, a: Term, b: Term) -> bool {
    let a = sub.resolve(a);
    let b = sub.resolve(b);
    match (a, b) {
        (Term::Const(x), Term::Const(y)) => x == y,
        (Term::Var(v), t) | (t, Term::Var(v)) => {
            if t == Term::Var(v) {
                true // already identical variables
            } else {
                sub.bind(v, t);
                true
            }
        }
    }
}

/// Unifies two atoms, returning the extended substitution on success.
///
/// The input substitution is taken by reference and never mutated; the
/// returned substitution extends it.
///
/// # Examples
/// ```
/// use qpl_datalog::{unify::unify_atoms, Atom, Substitution, SymbolTable, Term, Var};
/// let mut t = SymbolTable::new();
/// let p = t.intern("p");
/// let a = t.intern("a");
/// let goal = Atom::new(p, vec![Term::Const(a), Term::Var(Var(0))]);
/// let head = Atom::new(p, vec![Term::Var(Var(1)), Term::Var(Var(2))]);
/// let sub = unify_atoms(&goal, &head, &Substitution::new()).unwrap();
/// assert_eq!(sub.resolve(Term::Var(Var(1))), Term::Const(a));
/// ```
pub fn unify_atoms(a: &Atom, b: &Atom, base: &Substitution) -> Option<Substitution> {
    if a.predicate != b.predicate || a.arity() != b.arity() {
        return None;
    }
    let mut sub = base.clone();
    for (&ta, &tb) in a.args.iter().zip(b.args.iter()) {
        if !unify_terms(&mut sub, ta, tb) {
            return None;
        }
    }
    Some(sub)
}

/// Renames the variables of `atom` by offsetting their indices, producing
/// a variant disjoint from any variable below `offset`.
pub fn rename_apart(atom: &Atom, offset: u32) -> Atom {
    Atom::new(
        atom.predicate,
        atom.args
            .iter()
            .map(|&t| match t {
                Term::Var(v) => Term::Var(Var(v.0 + offset)),
                c => c,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn syms() -> (SymbolTable, crate::symbol::Symbol, crate::symbol::Symbol, crate::symbol::Symbol)
    {
        let mut t = SymbolTable::new();
        let p = t.intern("p");
        let a = t.intern("a");
        let b = t.intern("b");
        (t, p, a, b)
    }

    #[test]
    fn unify_const_const() {
        let (_, _, a, b) = syms();
        let mut s = Substitution::new();
        assert!(unify_terms(&mut s, Term::Const(a), Term::Const(a)));
        assert!(!unify_terms(&mut s, Term::Const(a), Term::Const(b)));
    }

    #[test]
    fn unify_var_const_binds() {
        let (_, _, a, _) = syms();
        let mut s = Substitution::new();
        assert!(unify_terms(&mut s, Term::Var(Var(0)), Term::Const(a)));
        assert_eq!(s.resolve(Term::Var(Var(0))), Term::Const(a));
    }

    #[test]
    fn unify_var_var_then_const_propagates() {
        let (_, _, a, _) = syms();
        let mut s = Substitution::new();
        assert!(unify_terms(&mut s, Term::Var(Var(0)), Term::Var(Var(1))));
        assert!(unify_terms(&mut s, Term::Var(Var(1)), Term::Const(a)));
        assert_eq!(s.resolve(Term::Var(Var(0))), Term::Const(a));
    }

    #[test]
    fn unify_same_var_is_noop() {
        let mut s = Substitution::new();
        assert!(unify_terms(&mut s, Term::Var(Var(3)), Term::Var(Var(3))));
        assert!(s.is_empty());
    }

    #[test]
    fn unify_atoms_clashing_predicates() {
        let (mut t, p, a, _) = syms();
        let q = t.intern("q");
        let x = Atom::new(p, vec![Term::Const(a)]);
        let y = Atom::new(q, vec![Term::Const(a)]);
        assert!(unify_atoms(&x, &y, &Substitution::new()).is_none());
    }

    #[test]
    fn unify_atoms_arity_mismatch() {
        let (_, p, a, _) = syms();
        let x = Atom::new(p, vec![Term::Const(a)]);
        let y = Atom::new(p, vec![Term::Const(a), Term::Const(a)]);
        assert!(unify_atoms(&x, &y, &Substitution::new()).is_none());
    }

    #[test]
    fn unify_atoms_does_not_mutate_base() {
        let (_, p, a, _) = syms();
        let base = Substitution::new();
        let x = Atom::new(p, vec![Term::Var(Var(0))]);
        let y = Atom::new(p, vec![Term::Const(a)]);
        let sub = unify_atoms(&x, &y, &base).unwrap();
        assert!(base.is_empty());
        assert_eq!(sub.resolve(Term::Var(Var(0))), Term::Const(a));
    }

    #[test]
    fn unify_atoms_failure_on_clash_after_partial_binding() {
        let (_, p, a, b) = syms();
        // p(X, X) vs p(a, b) must fail.
        let x = Atom::new(p, vec![Term::Var(Var(0)), Term::Var(Var(0))]);
        let y = Atom::new(p, vec![Term::Const(a), Term::Const(b)]);
        assert!(unify_atoms(&x, &y, &Substitution::new()).is_none());
    }

    #[test]
    fn apply_resolves_all_args() {
        let (_, p, a, _) = syms();
        let mut s = Substitution::new();
        s.bind(Var(0), Term::Const(a));
        let atom = Atom::new(p, vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        let applied = s.apply(&atom);
        assert_eq!(applied.args, vec![Term::Const(a), Term::Var(Var(1))]);
    }

    #[test]
    fn rename_apart_offsets_vars_only() {
        let (_, p, a, _) = syms();
        let atom = Atom::new(p, vec![Term::Var(Var(0)), Term::Const(a)]);
        let renamed = rename_apart(&atom, 10);
        assert_eq!(renamed.args, vec![Term::Var(Var(10)), Term::Const(a)]);
    }

    proptest::proptest! {
        /// Unification is symmetric: unify(a,b) succeeds iff unify(b,a)
        /// does, and the resulting substitutions agree on resolution of
        /// both atoms.
        #[test]
        fn unification_symmetric(args1 in proptest::collection::vec(0u8..6, 0..4),
                                 args2 in proptest::collection::vec(0u8..6, 0..4)) {
            let mut t = SymbolTable::new();
            let p = t.intern("p");
            let consts: Vec<_> = (0..3).map(|i| t.intern(&format!("c{i}"))).collect();
            let mk = |xs: &[u8]| Atom::new(p, xs.iter().map(|&x| {
                if x < 3 { Term::Const(consts[x as usize]) } else { Term::Var(Var(x as u32 - 3)) }
            }).collect());
            let (a, b) = (mk(&args1), mk(&args2));
            let ab = unify_atoms(&a, &b, &Substitution::new());
            let ba = unify_atoms(&b, &a, &Substitution::new());
            proptest::prop_assert_eq!(ab.is_some(), ba.is_some());
            if let (Some(s1), Some(s2)) = (ab, ba) {
                proptest::prop_assert_eq!(s1.apply(&a), s1.apply(&b));
                proptest::prop_assert_eq!(s2.apply(&a), s2.apply(&b));
            }
        }
    }
}
