//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specifications accepted by [`vec`]: an exact `usize`, a
/// half-open `Range<usize>`, or an inclusive `RangeInclusive<usize>`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        Self { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `vec(element, size)`: a vector whose length is drawn from `size` and
/// whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u128 + 1;
        let len = self.size.lo + (((rng.next_u64() as u128 * span) >> 64) as usize);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
