//! Note 4: conjunctive rule bodies as directed hypergraphs (and-or trees).
//!
//! "To deal with more general rules, whose antecedents are conjunctions of
//! more than one literal (e.g. `A :- B, C.`), we must use directed
//! hypergraphs, where each hyper-arc descends from one node to a *set* of
//! children nodes, where the conjunction of these nodes logically imply
//! their common parent."
//!
//! This module implements that extension for and-or **trees**:
//!
//! * [`AndOrGraph`] — goals with outgoing [`HyperArc`]s; a reduction
//!   hyper-arc has one child goal per body literal, a retrieval hyper-arc
//!   has none (it is its own success test);
//! * [`AndOrStrategy`] — a per-node ordering of hyper-arcs (the paper
//!   defers the full interleaved strategy space to \[GO91, Appendix A\];
//!   depth-first per-node orderings are the subspace implemented here,
//!   which is complete for purely disjunctive graphs and well-defined for
//!   conjunctions);
//! * [`execute`] — satisficing and-or search: a goal is proved by its
//!   first hyper-arc that is open and whose children *all* prove; costs
//!   accumulate for every attempt, including partial conjunction
//!   failures;
//! * exact expected cost by exhaustive enumeration and a brute-force
//!   optimal ordering, mirroring the simple-graph facilities.

use crate::error::GraphError;
use rand::Rng;

/// Node (goal) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GoalId(pub u32);

impl GoalId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Hyper-arc identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HyperArcId(pub u32);

impl HyperArcId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A hyper-arc: a retrieval (no children) or a conjunctive reduction.
#[derive(Debug, Clone)]
pub struct HyperArc {
    /// Goal this arc helps prove.
    pub from: GoalId,
    /// Conjunctive subgoals (empty for retrievals).
    pub children: Vec<GoalId>,
    /// Attempt cost.
    pub cost: f64,
    /// Label for diagnostics.
    pub label: String,
}

impl HyperArc {
    /// Whether this is a retrieval (leaf test).
    pub fn is_retrieval(&self) -> bool {
        self.children.is_empty()
    }
}

/// An and-or tree of goals.
#[derive(Debug, Clone)]
pub struct AndOrGraph {
    labels: Vec<String>,
    arcs: Vec<HyperArc>,
    outgoing: Vec<Vec<HyperArcId>>,
    root: GoalId,
}

impl AndOrGraph {
    /// The root goal.
    pub fn root(&self) -> GoalId {
        self.root
    }

    /// All hyper-arc ids.
    pub fn arc_ids(&self) -> impl Iterator<Item = HyperArcId> {
        (0..self.arcs.len() as u32).map(HyperArcId)
    }

    /// A hyper-arc.
    ///
    /// # Panics
    /// Panics on a foreign id.
    pub fn arc(&self, a: HyperArcId) -> &HyperArc {
        &self.arcs[a.index()]
    }

    /// Number of hyper-arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Number of goals.
    pub fn goal_count(&self) -> usize {
        self.labels.len()
    }

    /// Label of a goal.
    pub fn goal_label(&self, g: GoalId) -> &str {
        &self.labels[g.index()]
    }

    /// Outgoing hyper-arcs of a goal, construction order.
    pub fn outgoing(&self, g: GoalId) -> &[HyperArcId] {
        &self.outgoing[g.index()]
    }

    /// Retrieval hyper-arcs in id order.
    pub fn retrievals(&self) -> impl Iterator<Item = HyperArcId> + '_ {
        self.arc_ids().filter(|&a| self.arc(a).is_retrieval())
    }

    /// Looks up an arc by label.
    pub fn arc_by_label(&self, label: &str) -> Option<HyperArcId> {
        self.arc_ids().find(|&a| self.arc(a).label == label)
    }
}

/// Builder for [`AndOrGraph`].
#[derive(Debug, Clone)]
pub struct AndOrBuilder {
    labels: Vec<String>,
    arcs: Vec<HyperArc>,
    outgoing: Vec<Vec<HyperArcId>>,
}

impl AndOrBuilder {
    /// Starts a graph with a root goal.
    pub fn new(root_label: &str) -> Self {
        Self { labels: vec![root_label.into()], arcs: Vec::new(), outgoing: vec![Vec::new()] }
    }

    /// The root goal id.
    pub fn root(&self) -> GoalId {
        GoalId(0)
    }

    /// Adds a goal node.
    pub fn goal(&mut self, label: &str) -> GoalId {
        let id = GoalId(u32::try_from(self.labels.len()).expect("goal overflow"));
        self.labels.push(label.into());
        self.outgoing.push(Vec::new());
        id
    }

    /// Adds a conjunctive reduction from `from` to `children`.
    pub fn reduction(
        &mut self,
        from: GoalId,
        children: Vec<GoalId>,
        label: &str,
        cost: f64,
    ) -> HyperArcId {
        self.push(HyperArc { from, children, cost, label: label.into() })
    }

    /// Adds a retrieval arc at `from`.
    pub fn retrieval(&mut self, from: GoalId, label: &str, cost: f64) -> HyperArcId {
        self.push(HyperArc { from, children: Vec::new(), cost, label: label.into() })
    }

    fn push(&mut self, arc: HyperArc) -> HyperArcId {
        let id = HyperArcId(u32::try_from(self.arcs.len()).expect("arc overflow"));
        self.outgoing[arc.from.index()].push(id);
        self.arcs.push(arc);
        id
    }

    /// Finalizes, validating positive costs and that every goal has at
    /// least one way to be proved.
    ///
    /// # Errors
    /// [`GraphError::NonPositiveCost`] or [`GraphError::DeadLeaf`].
    pub fn finish(self) -> Result<AndOrGraph, GraphError> {
        for a in &self.arcs {
            if a.cost.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !a.cost.is_finite()
            {
                return Err(GraphError::NonPositiveCost(a.label.clone()));
            }
        }
        for (i, out) in self.outgoing.iter().enumerate() {
            if out.is_empty() {
                return Err(GraphError::DeadLeaf(format!(
                    "goal `{}` has no hyper-arcs",
                    self.labels[i]
                )));
            }
        }
        Ok(AndOrGraph {
            labels: self.labels,
            arcs: self.arcs,
            outgoing: self.outgoing,
            root: GoalId(0),
        })
    }
}

/// Blocked status per hyper-arc (the context class, as in Note 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AndOrContext {
    blocked: Vec<bool>,
}

impl AndOrContext {
    /// All arcs open.
    pub fn all_open(g: &AndOrGraph) -> Self {
        Self { blocked: vec![false; g.arc_count()] }
    }

    /// Blocks exactly the given arcs.
    pub fn with_blocked(g: &AndOrGraph, blocked: &[HyperArcId]) -> Self {
        let mut ctx = Self::all_open(g);
        for &a in blocked {
            ctx.blocked[a.index()] = true;
        }
        ctx
    }

    /// Whether `a` is blocked.
    pub fn is_blocked(&self, a: HyperArcId) -> bool {
        self.blocked[a.index()]
    }

    /// Sets blocked status.
    pub fn set_blocked(&mut self, a: HyperArcId, blocked: bool) {
        self.blocked[a.index()] = blocked;
    }
}

/// A per-goal ordering of outgoing hyper-arcs (depth-first and-or
/// strategy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AndOrStrategy {
    orders: Vec<Vec<HyperArcId>>,
}

impl AndOrStrategy {
    /// The construction-order (left-to-right) strategy.
    pub fn left_to_right(g: &AndOrGraph) -> Self {
        Self {
            orders: (0..g.goal_count()).map(|i| g.outgoing(GoalId(i as u32)).to_vec()).collect(),
        }
    }

    /// From explicit per-goal orders.
    ///
    /// # Errors
    /// [`GraphError::InvalidStrategy`] if some order is not a permutation
    /// of the goal's outgoing arcs.
    pub fn from_orders(g: &AndOrGraph, orders: Vec<Vec<HyperArcId>>) -> Result<Self, GraphError> {
        if orders.len() != g.goal_count() {
            return Err(GraphError::InvalidStrategy("order count != goal count".into()));
        }
        for (i, ord) in orders.iter().enumerate() {
            let mut a = ord.clone();
            let mut b = g.outgoing(GoalId(i as u32)).to_vec();
            a.sort();
            b.sort();
            if a != b {
                return Err(GraphError::InvalidStrategy(format!(
                    "orders[{i}] is not a permutation of the goal's arcs"
                )));
            }
        }
        Ok(Self { orders })
    }

    /// Order at `goal`.
    pub fn order(&self, goal: GoalId) -> &[HyperArcId] {
        &self.orders[goal.index()]
    }
}

/// Result of one and-or execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AndOrRun {
    /// Whether the root goal was proved.
    pub proved: bool,
    /// Total cost paid.
    pub cost: f64,
}

/// Executes a depth-first and-or search: each goal tries its hyper-arcs
/// in strategy order; a reduction proves the goal iff it is open and
/// every child goal proves (children attempted left to right, aborting
/// the conjunction on the first failure — costs already paid stay paid).
pub fn execute(g: &AndOrGraph, s: &AndOrStrategy, ctx: &AndOrContext) -> AndOrRun {
    fn prove(
        g: &AndOrGraph,
        s: &AndOrStrategy,
        ctx: &AndOrContext,
        goal: GoalId,
        cost: &mut f64,
    ) -> bool {
        for &a in s.order(goal) {
            let arc = g.arc(a);
            *cost += arc.cost;
            if ctx.is_blocked(a) {
                continue;
            }
            if arc.children.iter().all(|&c| prove(g, s, ctx, c, cost)) {
                return true;
            }
        }
        false
    }
    let mut cost = 0.0;
    let proved = prove(g, s, ctx, g.root(), &mut cost);
    AndOrRun { proved, cost }
}

/// Independent per-arc open probabilities for and-or graphs.
#[derive(Debug, Clone)]
pub struct AndOrModel {
    probs: Vec<f64>,
}

impl AndOrModel {
    /// Per-arc probabilities in arc-id order.
    ///
    /// # Errors
    /// [`GraphError::BadProbability`] on out-of-range values or a count
    /// mismatch.
    pub fn new(g: &AndOrGraph, probs: Vec<f64>) -> Result<Self, GraphError> {
        if probs.len() != g.arc_count() {
            return Err(GraphError::BadProbability(-1.0));
        }
        for &p in &probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(GraphError::BadProbability(p));
            }
        }
        Ok(Self { probs })
    }

    /// Samples a context.
    pub fn sample(&self, rng: &mut dyn rand::RngCore) -> AndOrContext {
        AndOrContext { blocked: self.probs.iter().map(|&p| rng.gen::<f64>() >= p).collect() }
    }

    /// Exact expected cost by exhaustive enumeration over probabilistic
    /// arcs.
    ///
    /// # Panics
    /// Panics with more than 24 probabilistic arcs.
    pub fn expected_cost(&self, g: &AndOrGraph, s: &AndOrStrategy) -> f64 {
        let vars: Vec<usize> =
            (0..self.probs.len()).filter(|&i| self.probs[i] > 0.0 && self.probs[i] < 1.0).collect();
        assert!(vars.len() <= 24, "too many probabilistic arcs");
        let mut total = 0.0;
        for mask in 0u32..(1 << vars.len()) {
            let mut ctx = AndOrContext { blocked: self.probs.iter().map(|&p| p == 0.0).collect() };
            let mut w = 1.0;
            for (bit, &i) in vars.iter().enumerate() {
                let open = mask & (1 << bit) != 0;
                ctx.blocked[i] = !open;
                w *= if open { self.probs[i] } else { 1.0 - self.probs[i] };
            }
            if w > 0.0 {
                total += w * execute(g, s, &ctx).cost;
            }
        }
        total
    }
}

/// Brute-force optimal depth-first and-or strategy under `model`.
///
/// # Panics
/// Panics if the order space exceeds `limit`.
pub fn brute_force_optimal(
    g: &AndOrGraph,
    model: &AndOrModel,
    limit: usize,
) -> (AndOrStrategy, f64) {
    fn permutations(items: &[HyperArcId]) -> Vec<Vec<HyperArcId>> {
        if items.is_empty() {
            return vec![Vec::new()];
        }
        let mut out = Vec::new();
        for (i, &x) in items.iter().enumerate() {
            let mut rest = items.to_vec();
            rest.remove(i);
            for mut p in permutations(&rest) {
                p.insert(0, x);
                out.push(p);
            }
        }
        out
    }
    let per_goal: Vec<Vec<Vec<HyperArcId>>> =
        (0..g.goal_count()).map(|i| permutations(g.outgoing(GoalId(i as u32)))).collect();
    let space: usize = per_goal.iter().map(Vec::len).product();
    assert!(space <= limit, "strategy space {space} exceeds limit {limit}");
    let mut best: Option<(AndOrStrategy, f64)> = None;
    let mut idx = vec![0usize; per_goal.len()];
    loop {
        let orders: Vec<Vec<HyperArcId>> =
            idx.iter().enumerate().map(|(i, &j)| per_goal[i][j].clone()).collect();
        let s = AndOrStrategy::from_orders(g, orders).expect("permutation orders are valid");
        let c = model.expected_cost(g, &s);
        if best.as_ref().is_none_or(|(_, b)| c < *b) {
            best = Some((s, c));
        }
        // Odometer increment.
        let mut carry = true;
        for i in 0..idx.len() {
            if carry {
                idx[i] += 1;
                if idx[i] == per_goal[i].len() {
                    idx[i] = 0;
                } else {
                    carry = false;
                }
            }
        }
        if carry {
            break;
        }
    }
    best.expect("at least one strategy exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// `A :- B, C.` plus a direct retrieval for A:
    ///    A —r1→ {B, C};  A —dA→ ∅;  B —dB→ ∅;  C —dC→ ∅.
    fn conj() -> AndOrGraph {
        let mut b = AndOrBuilder::new("A");
        let root = b.root();
        let gb = b.goal("B");
        let gc = b.goal("C");
        b.reduction(root, vec![gb, gc], "r1", 1.0);
        b.retrieval(root, "dA", 1.0);
        b.retrieval(gb, "dB", 1.0);
        b.retrieval(gc, "dC", 1.0);
        b.finish().unwrap()
    }

    #[test]
    fn conjunction_requires_all_children() {
        let g = conj();
        let s = AndOrStrategy::left_to_right(&g);
        // dB open, dC blocked, dA blocked: r1 is attempted but fails at C.
        let ctx = AndOrContext::with_blocked(
            &g,
            &[g.arc_by_label("dC").unwrap(), g.arc_by_label("dA").unwrap()],
        );
        let run = execute(&g, &s, &ctx);
        assert!(!run.proved);
        // r1 (1) + dB (1) + dC (1) + dA (1) = 4.
        assert_eq!(run.cost, 4.0);
    }

    #[test]
    fn conjunction_succeeds_when_all_open() {
        let g = conj();
        let s = AndOrStrategy::left_to_right(&g);
        let run = execute(&g, &s, &AndOrContext::all_open(&g));
        assert!(run.proved);
        // r1 + dB + dC = 3 (dA never attempted).
        assert_eq!(run.cost, 3.0);
    }

    #[test]
    fn conjunction_aborts_on_first_failed_child() {
        let g = conj();
        let s = AndOrStrategy::left_to_right(&g);
        // dB blocked: C never attempted under r1; falls through to dA.
        let ctx = AndOrContext::with_blocked(&g, &[g.arc_by_label("dB").unwrap()]);
        let run = execute(&g, &s, &ctx);
        assert!(run.proved);
        // r1 (1) + dB (1) + dA (1) = 3; dC skipped.
        assert_eq!(run.cost, 3.0);
    }

    #[test]
    fn blocked_reduction_skips_children() {
        let g = conj();
        let s = AndOrStrategy::left_to_right(&g);
        let ctx = AndOrContext::with_blocked(&g, &[g.arc_by_label("r1").unwrap()]);
        let run = execute(&g, &s, &ctx);
        assert!(run.proved);
        // r1 blocked (1), dA (1) = 2.
        assert_eq!(run.cost, 2.0);
    }

    #[test]
    fn reordering_changes_expected_cost() {
        let g = conj();
        // dA succeeds often and is cheap relative to the conjunction.
        let probs: Vec<f64> = g
            .arc_ids()
            .map(|a| match g.arc(a).label.as_str() {
                "r1" => 1.0,
                "dA" => 0.9,
                "dB" => 0.5,
                "dC" => 0.5,
                _ => unreachable!(),
            })
            .collect();
        let m = AndOrModel::new(&g, probs).unwrap();
        let ltr = AndOrStrategy::left_to_right(&g); // r1 before dA
        let (opt, c_opt) = brute_force_optimal(&g, &m, 10_000);
        let c_ltr = m.expected_cost(&g, &ltr);
        assert!(c_opt < c_ltr, "optimal {c_opt} must beat conjunction-first {c_ltr}");
        // Optimal tries dA first at the root.
        assert_eq!(opt.order(g.root())[0], g.arc_by_label("dA").unwrap());
    }

    #[test]
    fn expected_cost_matches_monte_carlo() {
        let g = conj();
        let probs: Vec<f64> = g
            .arc_ids()
            .map(|a| match g.arc(a).label.as_str() {
                "r1" => 0.8,
                "dA" => 0.3,
                "dB" => 0.6,
                "dC" => 0.4,
                _ => unreachable!(),
            })
            .collect();
        let m = AndOrModel::new(&g, probs).unwrap();
        let s = AndOrStrategy::left_to_right(&g);
        let exact = m.expected_cost(&g, &s);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mc: f64 =
            (0..n).map(|_| execute(&g, &s, &m.sample(&mut rng)).cost).sum::<f64>() / n as f64;
        assert!((exact - mc).abs() < 0.02, "exact {exact} vs MC {mc}");
    }

    #[test]
    fn disjunctive_and_or_matches_simple_graph_semantics() {
        // A purely disjunctive and-or tree is the same model as the
        // simple graph: reproduce G_A's c(Θ, I) values.
        let mut b = AndOrBuilder::new("instructor");
        let root = b.root();
        let prof = b.goal("prof");
        let grad = b.goal("grad");
        b.reduction(root, vec![prof], "R_p", 1.0);
        b.reduction(root, vec![grad], "R_g", 1.0);
        b.retrieval(prof, "D_p", 1.0);
        b.retrieval(grad, "D_g", 1.0);
        let g = b.finish().unwrap();
        let s = AndOrStrategy::left_to_right(&g);
        // I₁: D_p blocked. Θ₁-equivalent order: cost 4, proved.
        let ctx = AndOrContext::with_blocked(&g, &[g.arc_by_label("D_p").unwrap()]);
        let run = execute(&g, &s, &ctx);
        assert!(run.proved);
        assert_eq!(run.cost, 4.0);
    }

    #[test]
    fn invalid_orders_rejected() {
        let g = conj();
        let bad = vec![Vec::new(); g.goal_count()];
        assert!(matches!(AndOrStrategy::from_orders(&g, bad), Err(GraphError::InvalidStrategy(_))));
    }

    #[test]
    fn builder_validations() {
        let mut b = AndOrBuilder::new("A");
        let root = b.root();
        b.retrieval(root, "d", -1.0);
        assert!(matches!(b.finish(), Err(GraphError::NonPositiveCost(_))));

        let mut b2 = AndOrBuilder::new("A");
        let root = b2.root();
        let orphan = b2.goal("B");
        b2.reduction(root, vec![orphan], "r", 1.0);
        assert!(matches!(b2.finish(), Err(GraphError::DeadLeaf(_))));
    }
}
