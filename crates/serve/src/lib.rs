//! qpl-serve: a zero-dependency query-serving front door for the
//! strategy-learning engine.
//!
//! Speaks line-delimited JSON over TCP (wire protocol v1, see [`wire`]),
//! steers whole jobs to one of N shared-nothing executor shards (each
//! owning a full engine replica), coalesces concurrent queries into
//! 64-lane bit-parallel planes per shard (see [`batcher`]), refuses
//! work beyond a bounded per-shard queue instead of degrading
//! (`overloaded`), and — when enabled — hill-climbs the deployed
//! strategy online per shard, merging accepted climbs across shards
//! through a fingerprint-published strategy board (see [`server`]).
//!
//! Everything is `std`-only: sockets, threads, JSON parsing and
//! rendering are hand-rolled, so the crate adds no dependency surface
//! beyond the workspace's own crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod server;
pub mod wire;

pub use batcher::{plane_width_for_depth, Batcher, LaneWeight};
pub use server::{fallback_shard, steer_shard, ServeEngine, Server, ServerConfig};
pub use wire::{
    parse_request, JsonValue, LaneResult, Request, ShardStatsView, StatsView, WIRE_VERSION,
};
