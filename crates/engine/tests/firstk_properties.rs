//! Property tests for the first-`k` executor (Section 5.2): at `k = 1`
//! it must be *exactly* the satisficing executor of `qpl-graph` — same
//! cost, same outcome, same event sequence — for every graph, strategy,
//! and blocked-arc set. This pins the satisficing special case while the
//! `k > 1` generalization evolves.

use proptest::prelude::*;
use qpl_engine::firstk::execute_first_k;
use qpl_graph::context::{execute, Context, RunOutcome};
use qpl_graph::graph::{GraphBuilder, InferenceGraph, NodeId};
use qpl_graph::strategy::Strategy;

/// Deterministically builds a random-ish tree from a shape seed (same
/// construction as qpl-graph's property suite).
fn build_tree(seed: u64, max_depth: usize) -> InferenceGraph {
    fn lcg(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *state >> 33
    }
    fn grow(
        b: &mut GraphBuilder,
        node: NodeId,
        depth: usize,
        max_depth: usize,
        state: &mut u64,
        label: &mut u32,
    ) {
        let r = lcg(state) % 100;
        let branch = depth < max_depth && r < 55;
        if !branch {
            let c = 1.0 + (lcg(state) % 4) as f64;
            b.retrieval(node, &format!("D{}", *label), c);
            *label += 1;
            return;
        }
        let kids = 1 + (lcg(state) % 3) as usize;
        for _ in 0..kids {
            let c = 1.0 + (lcg(state) % 4) as f64;
            let (_, child) = b.reduction(node, &format!("R{}", *label), c, "goal");
            *label += 1;
            grow(b, child, depth + 1, max_depth, state, label);
        }
    }
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut b = GraphBuilder::new("root");
    let root = b.root();
    let mut label = 0;
    let kids = 1 + (lcg(&mut state) % 3) as usize;
    for _ in 0..kids {
        let c = 1.0 + (lcg(&mut state) % 4) as f64;
        let (_, child) = b.reduction(root, &format!("R{label}"), c, "goal");
        label += 1;
        grow(&mut b, child, 1, max_depth, &mut state, &mut label);
    }
    b.finish().expect("generated trees are valid")
}

fn context_from_mask(g: &InferenceGraph, mask: u64) -> Context {
    Context::from_fn(g, |a| mask & (1 << (a.index() % 64)) != 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `execute_first_k(k = 1)` is the satisficing executor: identical
    /// cost, outcome, and per-arc event stream on every random graph ×
    /// blocked-set combination.
    #[test]
    fn first_one_equals_satisficing_execute(seed in 0u64..5_000, mask in proptest::num::u64::ANY) {
        let g = build_tree(seed, 3);
        let strategy = Strategy::left_to_right(&g);
        let ctx = context_from_mask(&g, mask);
        let satisficing = execute(&g, &strategy, &ctx);
        let first1 = execute_first_k(&g, &strategy, &ctx, 1);

        prop_assert_eq!(satisficing.outcome, first1.trace.outcome, "outcome diverged");
        prop_assert_eq!(
            satisficing.cost.to_bits(),
            first1.trace.cost.to_bits(),
            "cost diverged: {} vs {}",
            satisficing.cost,
            first1.trace.cost
        );
        prop_assert_eq!(&satisficing.events, &first1.trace.events, "event streams diverged");
        match satisficing.outcome {
            RunOutcome::Succeeded(_) => {
                prop_assert!(first1.satisfied);
                prop_assert_eq!(first1.answers.len(), 1);
            }
            RunOutcome::Exhausted => {
                prop_assert!(!first1.satisfied);
                prop_assert!(first1.answers.is_empty());
            }
        }
    }

    /// An unsatisfied first-`k` run (fewer than `k` answers exist) always
    /// reports `Exhausted`, never a stale `Succeeded(last_answer)`.
    #[test]
    fn unsatisfied_runs_report_exhausted(seed in 0u64..5_000, mask in proptest::num::u64::ANY, k in 1usize..5) {
        let g = build_tree(seed, 3);
        let strategy = Strategy::left_to_right(&g);
        let ctx = context_from_mask(&g, mask);
        let run = execute_first_k(&g, &strategy, &ctx, k);
        if !run.satisfied {
            prop_assert!(run.answers.len() < k);
            prop_assert_eq!(run.trace.outcome, RunOutcome::Exhausted);
        } else {
            prop_assert_eq!(run.answers.len(), k);
        }
    }
}
