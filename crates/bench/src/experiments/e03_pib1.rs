//! E3 — Section 3.1: PIB₁, Equation 3's decision behaviour.
//!
//! Paper claims: maintaining just three counters `(m, k_p, k_g)` and
//! testing Equation 3 approves the Θ₁→Θ₂ switch with confidence `1 − δ`
//! exactly when the accumulated evidence clears the threshold
//! `Λ·sqrt((m/2)·ln(1/δ))`; false positives occur with probability
//! below δ.

use crate::report::{fm, Report};
use qpl_core::{Pib1, Pib1Decision, SiblingSwap};
use qpl_graph::expected::{ContextDistribution, IndependentModel};
use qpl_graph::Strategy;
use qpl_workload::university;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E3 with a base seed and returns the report.
pub fn run(seed: u64) -> Report {
    let u = university();
    let g = u.graph().clone();
    let swap = SiblingSwap::new(&g, g.children(g.root())[0], g.children(g.root())[1])
        .expect("root children are siblings");

    let mut r = Report::new("E3: PIB₁ one-shot filter (Equation 3)");
    r.note("monitored: Θ₁ prof-first; proposed: Θ₂ grad-first; truth: p = ⟨0.05, 0.8⟩");

    // Switch latency vs δ.
    let truth = IndependentModel::from_retrieval_probs(&g, &[0.05, 0.8]).expect("valid probs");
    let mut rows = Vec::new();
    for (i, delta) in [0.2, 0.1, 0.05, 0.01].into_iter().enumerate() {
        let trials = 60;
        let mut latencies = Vec::new();
        for t in 0..trials {
            let mut pib1 = Pib1::new(&g, Strategy::left_to_right(&g), swap, delta)
                .expect("swap applies to Θ₁");
            let mut rng = StdRng::seed_from_u64(seed + (i as u64) * 1000 + t);
            let mut m = 0u64;
            loop {
                pib1.observe(&g, &truth.sample(&mut rng));
                m += 1;
                if pib1.decision() == Pib1Decision::Switch {
                    break;
                }
                assert!(m < 100_000, "PIB₁ never switched");
            }
            latencies.push(m);
        }
        latencies.sort_unstable();
        let median = latencies[latencies.len() / 2];
        let max = *latencies.last().expect("non-empty");
        rows.push(vec![fm(delta, 2), median.to_string(), max.to_string()]);
    }
    r.table("samples until the (correct) switch is approved", &["δ", "median m", "max m"], rows);

    // False positives under an exactly-neutral distribution.
    let neutral = IndependentModel::from_retrieval_probs(&g, &[0.4, 0.4]).expect("valid probs");
    let mut fp_rows = Vec::new();
    let mut all_ok = true;
    for (i, delta) in [0.2, 0.1, 0.05].into_iter().enumerate() {
        let trials = 400u64;
        let horizon = 250;
        let mut wrong = 0u64;
        for t in 0..trials {
            let mut pib1 =
                Pib1::new(&g, Strategy::left_to_right(&g), swap, delta).expect("swap applies");
            let mut rng = StdRng::seed_from_u64(seed + 7_000 + (i as u64) * 10_000 + t);
            for _ in 0..horizon {
                pib1.observe(&g, &neutral.sample(&mut rng));
                if pib1.decision() == Pib1Decision::Switch {
                    wrong += 1;
                    break;
                }
            }
        }
        let rate = wrong as f64 / trials as f64;
        if rate > delta {
            all_ok = false;
        }
        fp_rows.push(vec![fm(delta, 2), fm(rate, 4), format!("≤ {}", fm(delta, 2))]);
    }
    r.table(
        "false-positive rate when C[Θ₁] = C[Θ₂] (400 runs × 250 samples)",
        &["δ", "measured rate", "bound"],
        fp_rows,
    );

    r.set_verdict(if all_ok {
        "REPRODUCED (switch latency scales with ln(1/δ); error rate within δ)"
    } else {
        "MISMATCH (false-positive rate exceeded δ)"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e3_reproduces() {
        let r = super::run(17);
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
