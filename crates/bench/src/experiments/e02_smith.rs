//! E2 — Section 2's critique of the \[Smi89\] fact-count heuristic.
//!
//! Paper claims: with DB₂ (2000 `prof` / 500 `grad` facts) the heuristic
//! "would claim that Θ₁ is the optimal strategy", yet on a query
//! distribution about minors ("none of the κᵢs … will be professors")
//! "Θ₂ is clearly the superior strategy".

use crate::report::{fm, Report};
use qpl_core::SmithHeuristic;
use qpl_graph::expected::ContextDistribution;
use qpl_workload::university;

/// Runs E2 and returns the report.
pub fn run() -> Report {
    let mut u = university();
    let db2 = u.db2();
    let g = u.graph().clone();

    let mut r = Report::new("E2: Smith fact-count heuristic vs the minors distribution");
    r.note("DB₂: 2000 prof facts, 500 grad facts → heuristic p̂ = ⟨0.8, 0.2⟩");

    let model = SmithHeuristic::model(&u.compiled, &db2);
    let probs = model.retrieval_probs(&g);
    r.table(
        "heuristic probability estimates",
        &["retrieval", "paper ratio", "estimate"],
        vec![
            vec!["D_p (prof)".into(), "4× more likely".into(), fm(probs[0], 2)],
            vec!["D_g (grad)".into(), "baseline".into(), fm(probs[1], 2)],
        ],
    );

    let smith = SmithHeuristic::strategy(&u.compiled, &db2).expect("tree graph");
    let picks_prof_first = smith.arcs() == u.prof_first.arcs();

    // The minors distribution: professors never match; grad matches 50%.
    let minors = u.minors_distribution(0.5);
    let c_smith = minors.expected_cost(&g, &smith);
    let c1 = minors.expected_cost(&g, &u.prof_first);
    let c2 = minors.expected_cost(&g, &u.grad_first);
    r.table(
        "expected costs on the minors distribution (grad rate 0.5)",
        &["strategy", "expected cost"],
        vec![
            vec!["Smith's pick".into(), fm(c_smith, 3)],
            vec!["Θ₁ prof-first".into(), fm(c1, 3)],
            vec!["Θ₂ grad-first".into(), fm(c2, 3)],
        ],
    );
    r.note(format!(
        "regret of the heuristic: {} ({}%)",
        fm(c_smith - c2, 3),
        fm(100.0 * (c_smith - c2) / c2, 1)
    ));

    let ok = picks_prof_first && c2 < c1 && (c_smith - c1).abs() < 1e-9;
    r.set_verdict(if ok {
        "REPRODUCED (heuristic picks Θ₁; the query distribution makes Θ₂ superior)"
    } else {
        "MISMATCH"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_reproduces() {
        let r = super::run();
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
