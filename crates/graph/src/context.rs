//! Query-processing contexts and strategy execution.
//!
//! Note 2 of the paper observes that contexts `⟨q, DB⟩` partition into
//! equivalence classes determined solely by *which arcs are blocked*; a
//! [`Context`] here is exactly that equivalence class — a blocked-status
//! bit per arc. The engine crate maps real `⟨query, Database⟩` pairs into
//! these classes.
//!
//! [`execute`] runs a strategy in a context and produces a [`Trace`]:
//! per-arc outcomes, the total cost `c(Θ, I)`, and whether a success node
//! was reached. The cost semantics follow the paper's examples exactly:
//!
//! * attempting an arc costs `f(a)` whether or not it is blocked
//!   (e.g. `c(Θ₁, I₁) = 4` includes the *failed* `D_p` probe);
//! * an arc can only be attempted once its source node has been reached;
//!   arcs below a blocked arc are skipped at no cost;
//! * the first success node reached ends the run (satisficing search) —
//!   the remaining subsequence is ignored.

use crate::graph::{ArcId, InferenceGraph};

/// A context equivalence class: the set of blocked arcs (Note 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Context {
    pub(crate) blocked: Vec<bool>,
}

impl Context {
    /// Internal constructor from a raw blocked vector.
    pub(crate) fn from_parts(blocked: Vec<bool>) -> Self {
        Self { blocked }
    }

    /// A context in which every arc is traversable.
    pub fn all_open(g: &InferenceGraph) -> Self {
        Self { blocked: vec![false; g.arc_count()] }
    }

    /// A context in which every arc is blocked.
    pub fn all_blocked(g: &InferenceGraph) -> Self {
        Self { blocked: vec![true; g.arc_count()] }
    }

    /// A context blocking exactly the given arcs.
    pub fn with_blocked(g: &InferenceGraph, blocked: &[ArcId]) -> Self {
        let mut ctx = Self::all_open(g);
        for &a in blocked {
            ctx.blocked[a.index()] = true;
        }
        ctx
    }

    /// Builds a context from a per-arc predicate.
    pub fn from_fn(g: &InferenceGraph, mut f: impl FnMut(ArcId) -> bool) -> Self {
        Self { blocked: g.arc_ids().map(&mut f).collect() }
    }

    /// Refills this context in place from a per-arc predicate, resizing
    /// to fit `g` — the buffer-reuse counterpart of
    /// [`from_fn`](Self::from_fn).
    pub fn reset_from_fn(&mut self, g: &InferenceGraph, mut f: impl FnMut(ArcId) -> bool) {
        self.blocked.clear();
        self.blocked.extend(g.arc_ids().map(&mut f));
    }

    /// Overwrites this context with `other`'s statuses, reusing the
    /// existing buffer (unlike `clone_from`, never reallocates when the
    /// capacity already fits).
    pub fn copy_from(&mut self, other: &Context) {
        self.blocked.clear();
        self.blocked.extend_from_slice(&other.blocked);
    }

    /// Whether `a` is blocked.
    pub fn is_blocked(&self, a: ArcId) -> bool {
        self.blocked[a.index()]
    }

    /// Sets the blocked status of `a`.
    pub fn set_blocked(&mut self, a: ArcId, blocked: bool) {
        self.blocked[a.index()] = blocked;
    }

    /// Number of arcs this context covers.
    pub fn arc_count(&self) -> usize {
        self.blocked.len()
    }

    /// The blocked arcs.
    pub fn blocked_arcs(&self) -> impl Iterator<Item = ArcId> + '_ {
        self.blocked.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| ArcId(i as u32))
    }

    /// The arc-set identification of Note 2: the *unblocked* arcs (the
    /// paper identifies `I₁` with `{R_p, R_g, D_g}` — its open arcs).
    pub fn open_arcs(&self) -> impl Iterator<Item = ArcId> + '_ {
        self.blocked.iter().enumerate().filter(|(_, &b)| !b).map(|(i, _)| ArcId(i as u32))
    }
}

/// Outcome of attempting one arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArcOutcome {
    /// The arc was traversable; its target node was reached.
    Traversed,
    /// The arc was blocked; its cost was paid but the target not reached.
    Blocked,
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// A success node was reached via the given retrieval arc ("yes").
    Succeeded(ArcId),
    /// Every reachable arc was exhausted without success ("no").
    Exhausted,
}

impl RunOutcome {
    /// Whether the derivation succeeded.
    pub fn is_success(self) -> bool {
        matches!(self, RunOutcome::Succeeded(_))
    }
}

/// Full record of one strategy execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Arcs actually attempted, in order, with their outcomes.
    pub events: Vec<(ArcId, ArcOutcome)>,
    /// Total cost `c(Θ, I)`.
    pub cost: f64,
    /// Terminal outcome.
    pub outcome: RunOutcome,
}

impl Trace {
    /// Outcome of `a` if it was attempted during this run.
    pub fn outcome_of(&self, a: ArcId) -> Option<ArcOutcome> {
        self.events.iter().find(|(x, _)| *x == a).map(|(_, o)| *o)
    }

    /// Whether `a` was attempted.
    pub fn attempted(&self, a: ArcId) -> bool {
        self.outcome_of(a).is_some()
    }

    /// Emit this run's telemetry into a
    /// [`MetricsSink`](qpl_obs::MetricsSink) under the `graph.run.*`
    /// namespace: arcs attempted/traversed/blocked, the run cost, and
    /// which terminal outcome was hit. Execution itself never touches a
    /// sink; callers observe finished traces.
    pub fn emit_to(&self, sink: &mut dyn qpl_obs::MetricsSink) {
        let blocked = self.events.iter().filter(|(_, o)| *o == ArcOutcome::Blocked).count() as u64;
        sink.counter("graph.run.arcs_attempted", self.events.len() as u64);
        sink.counter("graph.run.arcs_blocked", blocked);
        sink.counter("graph.run.arcs_traversed", self.events.len() as u64 - blocked);
        sink.value("graph.run.cost", self.cost);
        match self.outcome {
            RunOutcome::Succeeded(_) => sink.counter("graph.run.succeeded", 1),
            RunOutcome::Exhausted => sink.counter("graph.run.exhausted", 1),
        }
    }
}

/// Reusable per-run buffers: the reached-node bitvec, the event buffer,
/// and a partial [`Context`] for probe-driven (lazy) runs.
///
/// [`execute`] allocates these three afresh on every call, which is fine
/// for one-off runs but dominates tight Monte-Carlo loops (PIB absorbs a
/// context, then replays every candidate strategy against its pessimistic
/// completion — thousands of executions per second, each a `Vec::new()`
/// under the old API). Holding one `RunScratch` per loop and calling
/// [`execute_into`] / [`cost_into`] makes the per-run path allocation-free
/// after warm-up: buffers are cleared, never shrunk.
///
/// Results are identical to the allocating API — [`execute`] itself is a
/// thin wrapper over [`execute_into`].
#[derive(Debug, Clone)]
pub struct RunScratch {
    pub(crate) reached: Vec<bool>,
    pub(crate) events: Vec<(ArcId, ArcOutcome)>,
    pub(crate) cost: f64,
    pub(crate) outcome: RunOutcome,
    pub(crate) partial: Context,
}

impl RunScratch {
    /// Buffers sized for `g`. The partial context starts empty and is
    /// sized on first probe-driven use.
    pub fn new(g: &InferenceGraph) -> Self {
        Self {
            reached: vec![false; g.node_count()],
            events: Vec::with_capacity(g.arc_count()),
            cost: 0.0,
            outcome: RunOutcome::Exhausted,
            partial: Context::from_parts(Vec::new()),
        }
    }

    /// Clears the run state (keeps allocations).
    fn begin(&mut self, g: &InferenceGraph) {
        self.reached.clear();
        self.reached.resize(g.node_count(), false);
        self.reached[g.root().index()] = true;
        self.events.clear();
        self.cost = 0.0;
        self.outcome = RunOutcome::Exhausted;
    }

    /// Resets the partial context to all-open, resizing for `g`.
    fn begin_partial(&mut self, g: &InferenceGraph) {
        self.partial.blocked.clear();
        self.partial.blocked.resize(g.arc_count(), false);
    }

    /// Clears the run state for a program execution (same reset as
    /// [`begin`](Self::begin), but sized from program metadata so the
    /// executor needs no graph reference).
    pub(crate) fn begin_sized(&mut self, node_count: usize, root: usize) {
        self.reached.clear();
        self.reached.resize(node_count, false);
        self.reached[root] = true;
        self.events.clear();
        self.cost = 0.0;
        self.outcome = RunOutcome::Exhausted;
    }

    /// Events of the most recent run, in attempt order.
    pub fn events(&self) -> &[(ArcId, ArcOutcome)] {
        &self.events
    }

    /// Cost `c(Θ, I)` of the most recent run.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Terminal outcome of the most recent run.
    pub fn outcome(&self) -> RunOutcome {
        self.outcome
    }

    /// The partial context recorded by the most recent probe-driven run
    /// ([`execute_probe_into`]): probed arcs carry their observed status,
    /// unprobed arcs read as open.
    pub fn partial(&self) -> &Context {
        &self.partial
    }

    /// Mutable access to the partial context, for callers that classify
    /// a full context into the buffer before [`execute_partial_into`].
    pub fn partial_mut(&mut self) -> &mut Context {
        &mut self.partial
    }

    /// Materializes the most recent run as an owned [`Trace`] (clones the
    /// event buffer; the scratch stays reusable).
    pub fn to_trace(&self) -> Trace {
        Trace { events: self.events.clone(), cost: self.cost, outcome: self.outcome }
    }

    /// Moves the event buffer out into a [`Trace`], leaving the scratch
    /// reusable but with an empty buffer.
    fn take_trace(&mut self) -> Trace {
        Trace { events: std::mem::take(&mut self.events), cost: self.cost, outcome: self.outcome }
    }
}

/// Executes `strategy` in `context`, returning the full [`Trace`].
///
/// # Panics
/// Panics if `context` was built for a different graph (arc-count
/// mismatch).
pub fn execute(
    g: &InferenceGraph,
    strategy: &crate::strategy::Strategy,
    context: &Context,
) -> Trace {
    let mut scratch = RunScratch::new(g);
    execute_into(g, strategy, context, &mut scratch);
    scratch.take_trace()
}

/// [`execute`] into reusable buffers: identical semantics and trace, no
/// per-run allocation. Read the results off the scratch afterwards.
///
/// # Panics
/// Panics if `context` was built for a different graph.
pub fn execute_into(
    g: &InferenceGraph,
    strategy: &crate::strategy::Strategy,
    context: &Context,
    scratch: &mut RunScratch,
) -> RunOutcome {
    assert_eq!(context.arc_count(), g.arc_count(), "context built for a different graph");
    scratch.begin(g);
    for &a in strategy.arcs() {
        let arc = g.arc(a);
        if !scratch.reached[arc.from.index()] {
            continue; // below a blocked arc: skipped at no cost
        }
        scratch.cost += arc.cost;
        if context.is_blocked(a) {
            scratch.events.push((a, ArcOutcome::Blocked));
            continue;
        }
        scratch.events.push((a, ArcOutcome::Traversed));
        scratch.reached[arc.to.index()] = true;
        if g.node(arc.to).is_success {
            scratch.outcome = RunOutcome::Succeeded(a);
            return scratch.outcome;
        }
    }
    scratch.outcome
}

/// Executes `strategy`, reading arc statuses from the scratch's own
/// partial context (filled beforehand via [`RunScratch::partial_mut`]).
/// Lets a caller classify into the buffer and execute without a borrow
/// conflict between context and scratch.
///
/// # Panics
/// Panics if the partial context's arc count does not match `g`.
pub fn execute_partial_into(
    g: &InferenceGraph,
    strategy: &crate::strategy::Strategy,
    scratch: &mut RunScratch,
) -> RunOutcome {
    assert_eq!(
        scratch.partial.arc_count(),
        g.arc_count(),
        "partial context not sized for this graph"
    );
    scratch.begin(g);
    for &a in strategy.arcs() {
        let arc = g.arc(a);
        if !scratch.reached[arc.from.index()] {
            continue;
        }
        scratch.cost += arc.cost;
        if scratch.partial.is_blocked(a) {
            scratch.events.push((a, ArcOutcome::Blocked));
            continue;
        }
        scratch.events.push((a, ArcOutcome::Traversed));
        scratch.reached[arc.to.index()] = true;
        if g.node(arc.to).is_success {
            scratch.outcome = RunOutcome::Succeeded(a);
            return scratch.outcome;
        }
    }
    scratch.outcome
}

/// Probe-driven execution: arc statuses are discovered by calling
/// `probe` only when the strategy actually attempts the arc (the lazy
/// real-deployment path — one database probe per attempted arc). The
/// observed statuses are recorded into the scratch's partial context;
/// unattempted arcs read as open there.
pub fn execute_probe_into(
    g: &InferenceGraph,
    strategy: &crate::strategy::Strategy,
    scratch: &mut RunScratch,
    mut probe: impl FnMut(ArcId) -> bool,
) -> RunOutcome {
    scratch.begin(g);
    scratch.begin_partial(g);
    for &a in strategy.arcs() {
        let arc = g.arc(a);
        if !scratch.reached[arc.from.index()] {
            continue;
        }
        scratch.cost += arc.cost;
        let blocked = probe(a);
        scratch.partial.set_blocked(a, blocked);
        if blocked {
            scratch.events.push((a, ArcOutcome::Blocked));
            continue;
        }
        scratch.events.push((a, ArcOutcome::Traversed));
        scratch.reached[arc.to.index()] = true;
        if g.node(arc.to).is_success {
            scratch.outcome = RunOutcome::Succeeded(a);
            return scratch.outcome;
        }
    }
    scratch.outcome
}

/// Cost-only execution into reusable buffers: no event recording at all,
/// the cheapest way to evaluate `c(Θ, I)` in a tight loop. The returned
/// value is bit-identical to `execute(..).cost` (same additions in the
/// same order).
///
/// # Panics
/// Panics if `context` was built for a different graph.
pub fn cost_into(
    g: &InferenceGraph,
    strategy: &crate::strategy::Strategy,
    context: &Context,
    scratch: &mut RunScratch,
) -> f64 {
    assert_eq!(context.arc_count(), g.arc_count(), "context built for a different graph");
    scratch.begin(g);
    for &a in strategy.arcs() {
        let arc = g.arc(a);
        if !scratch.reached[arc.from.index()] {
            continue;
        }
        scratch.cost += arc.cost;
        if context.is_blocked(a) {
            continue;
        }
        scratch.reached[arc.to.index()] = true;
        if g.node(arc.to).is_success {
            return scratch.cost;
        }
    }
    scratch.cost
}

/// Convenience: just the cost `c(Θ, I)`.
pub fn cost(g: &InferenceGraph, strategy: &crate::strategy::Strategy, context: &Context) -> f64 {
    let mut scratch = RunScratch::new(g);
    cost_into(g, strategy, context, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::strategy::Strategy;

    fn g_a() -> InferenceGraph {
        let mut b = GraphBuilder::new("instructor(κ)");
        let root = b.root();
        let (_, prof) = b.reduction(root, "R_p", 1.0, "prof(κ)");
        b.retrieval(prof, "D_p", 1.0);
        let (_, grad) = b.reduction(root, "R_g", 1.0, "grad(κ)");
        b.retrieval(grad, "D_g", 1.0);
        b.finish().unwrap()
    }

    fn strat(g: &InferenceGraph, labels: &[&str]) -> Strategy {
        Strategy::from_arcs(g, labels.iter().map(|l| g.arc_by_label(l).unwrap()).collect()).unwrap()
    }

    /// `I₁ = ⟨instructor(manolis), DB₁⟩`: `D_p` blocked, `D_g` open.
    fn i1(g: &InferenceGraph) -> Context {
        Context::with_blocked(g, &[g.arc_by_label("D_p").unwrap()])
    }

    /// `I₂ = ⟨instructor(russ), DB₁⟩`: `D_g` blocked, `D_p` open.
    fn i2(g: &InferenceGraph) -> Context {
        Context::with_blocked(g, &[g.arc_by_label("D_g").unwrap()])
    }

    #[test]
    fn paper_costs_for_i1() {
        // "assuming each arc costs 1, then c(Θ₁, I₁) = 4 and c(Θ₂, I₁) = 2"
        let g = g_a();
        let t1 = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let t2 = strat(&g, &["R_g", "D_g", "R_p", "D_p"]);
        assert_eq!(cost(&g, &t1, &i1(&g)), 4.0);
        assert_eq!(cost(&g, &t2, &i1(&g)), 2.0);
    }

    #[test]
    fn paper_costs_for_i2() {
        // "Using I₂ = ⟨instructor(russ), DB₁⟩, c(Θ₁, I₂) = 2 and c(Θ₂, I₂) = 4."
        let g = g_a();
        let t1 = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let t2 = strat(&g, &["R_g", "D_g", "R_p", "D_p"]);
        assert_eq!(cost(&g, &t1, &i2(&g)), 2.0);
        assert_eq!(cost(&g, &t2, &i2(&g)), 4.0);
    }

    #[test]
    fn success_stops_the_run() {
        let g = g_a();
        let t1 = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let trace = execute(&g, &t1, &i2(&g));
        assert!(trace.outcome.is_success());
        assert_eq!(trace.events.len(), 2, "R_g and D_g never attempted");
        assert!(!trace.attempted(g.arc_by_label("R_g").unwrap()));
    }

    #[test]
    fn exhaustion_visits_everything() {
        let g = g_a();
        let t1 = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let none = Context::all_blocked(&g);
        let trace = execute(&g, &t1, &none);
        assert_eq!(trace.outcome, RunOutcome::Exhausted);
        // Both reductions blocked: retrievals below never attempted.
        assert_eq!(trace.cost, 2.0);
        assert_eq!(trace.events.len(), 2);
    }

    #[test]
    fn blocked_reduction_skips_subtree_at_no_cost() {
        let g = g_a();
        let t1 = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let ctx = Context::with_blocked(
            &g,
            &[g.arc_by_label("R_p").unwrap(), g.arc_by_label("D_g").unwrap()],
        );
        let trace = execute(&g, &t1, &ctx);
        // R_p blocked (cost 1), D_p skipped, R_g traversed (1), D_g blocked (1).
        assert_eq!(trace.cost, 3.0);
        assert_eq!(trace.outcome, RunOutcome::Exhausted);
        assert!(!trace.attempted(g.arc_by_label("D_p").unwrap()));
    }

    #[test]
    fn blocked_retrieval_cost_still_paid() {
        let g = g_a();
        let t1 = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let trace = execute(&g, &t1, &i1(&g));
        assert_eq!(trace.outcome_of(g.arc_by_label("D_p").unwrap()), Some(ArcOutcome::Blocked));
        assert_eq!(trace.cost, 4.0);
    }

    #[test]
    fn succeeded_arc_identified() {
        let g = g_a();
        let t2 = strat(&g, &["R_g", "D_g", "R_p", "D_p"]);
        let trace = execute(&g, &t2, &i1(&g));
        assert_eq!(trace.outcome, RunOutcome::Succeeded(g.arc_by_label("D_g").unwrap()));
    }

    #[test]
    fn context_identification_matches_note_2() {
        // "we can identify the context I₁ with the arc-set {R_p, R_g, D_g}"
        let g = g_a();
        let open: Vec<String> = i1(&g).open_arcs().map(|a| g.arc(a).label.clone()).collect();
        assert_eq!(
            open,
            ["R_p", "D_p", "R_g", "D_g"]
                .iter()
                .filter(|l| **l != "D_p")
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn non_uniform_costs_accumulate() {
        let mut b = GraphBuilder::new("q");
        let root = b.root();
        let (_, n1) = b.reduction(root, "R1", 2.5, "g1");
        b.retrieval(n1, "D1", 0.5);
        let (_, n2) = b.reduction(root, "R2", 1.5, "g2");
        b.retrieval(n2, "D2", 3.0);
        let g = b.finish().unwrap();
        let s = Strategy::left_to_right(&g);
        let ctx = Context::with_blocked(&g, &[g.arc_by_label("D1").unwrap()]);
        // R1 (2.5) + D1 blocked (0.5) + R2 (1.5) + D2 success (3.0) = 7.5
        assert!((cost(&g, &s, &ctx) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn trace_events_in_strategy_order() {
        let g = g_a();
        let t2 = strat(&g, &["R_g", "D_g", "R_p", "D_p"]);
        let trace = execute(&g, &t2, &i2(&g));
        let labels: Vec<&str> =
            trace.events.iter().map(|(a, _)| g.arc(*a).label.as_str()).collect();
        assert_eq!(labels, ["R_g", "D_g", "R_p", "D_p"]);
    }

    #[test]
    fn scratch_execution_matches_allocating_execution() {
        // Same trace (events, cost, outcome) for every strategy × context
        // on G_A, with ONE scratch reused across all runs.
        let g = g_a();
        let strategies = crate::strategy::enumerate_all(&g, 100).unwrap();
        let contexts = [
            Context::all_open(&g),
            Context::all_blocked(&g),
            i1(&g),
            i2(&g),
            Context::with_blocked(&g, &[g.arc_by_label("R_p").unwrap()]),
        ];
        let mut scratch = RunScratch::new(&g);
        for s in &strategies {
            for ctx in &contexts {
                let reference = execute(&g, s, ctx);
                execute_into(&g, s, ctx, &mut scratch);
                assert_eq!(scratch.to_trace(), reference);
                assert_eq!(scratch.cost().to_bits(), reference.cost.to_bits());
                let c = cost_into(&g, s, ctx, &mut scratch);
                assert_eq!(c.to_bits(), reference.cost.to_bits());
            }
        }
    }

    #[test]
    fn probe_execution_matches_eager_and_records_partial() {
        let g = g_a();
        let t1 = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let ctx = i1(&g);
        let mut scratch = RunScratch::new(&g);
        let mut probes = 0usize;
        execute_probe_into(&g, &t1, &mut scratch, |a| {
            probes += 1;
            ctx.is_blocked(a)
        });
        let eager = execute(&g, &t1, &ctx);
        assert_eq!(scratch.to_trace(), eager);
        assert_eq!(probes, eager.events.len(), "one probe per attempted arc");
        // Attempted arcs carry their status in the partial context.
        for &(a, o) in &eager.events {
            assert_eq!(scratch.partial().is_blocked(a), o == ArcOutcome::Blocked);
        }
    }

    #[test]
    fn partial_execution_reads_own_buffer() {
        let g = g_a();
        let t1 = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let ctx = i2(&g);
        let mut scratch = RunScratch::new(&g);
        *scratch.partial_mut() = ctx.clone();
        execute_partial_into(&g, &t1, &mut scratch);
        assert_eq!(scratch.to_trace(), execute(&g, &t1, &ctx));
    }

    #[test]
    fn context_setters_and_accessors() {
        let g = g_a();
        let mut ctx = Context::all_open(&g);
        let dp = g.arc_by_label("D_p").unwrap();
        assert!(!ctx.is_blocked(dp));
        ctx.set_blocked(dp, true);
        assert!(ctx.is_blocked(dp));
        assert_eq!(ctx.blocked_arcs().collect::<Vec<_>>(), vec![dp]);
    }
}
