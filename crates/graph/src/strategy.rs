//! Query-processing strategies (Section 2.1, Note 3).
//!
//! A strategy `Θ` is written as a sequence of all of the graph's arcs,
//! "with the understanding that the remaining subsequence will be ignored
//! after reaching a solution". Note 3 refines this: a valid strategy is a
//! sequence of *paths*, each of which descends from an already-visited
//! node down to a retrieval. This module provides:
//!
//! * [`Strategy`] — the validated arc sequence, with path decomposition;
//! * depth-first construction helpers ([`Strategy::left_to_right`],
//!   [`Strategy::dfs_from_orders`]) — the subspace PIB hill-climbs over;
//! * exhaustive enumeration of all path-form strategies
//!   ([`enumerate_all`]) and of all depth-first strategies
//!   ([`enumerate_dfs`]), used by the brute-force optimum.

use crate::error::GraphError;
use crate::graph::{ArcId, ArcKind, InferenceGraph, NodeId};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

/// A validated query-processing strategy: a path-form ordering of every
/// arc in the graph.
///
/// The arc sequence is immutable after construction; the fingerprint is
/// computed lazily once and cached (see [`Strategy::fingerprint`]).
#[derive(Debug, Clone)]
pub struct Strategy {
    arcs: Vec<ArcId>,
    /// Cached [`fingerprint`](Self::fingerprint). `OnceLock` rather than
    /// a plain field so construction stays infallible-cheap and clones
    /// carry the cache along.
    fingerprint: OnceLock<u64>,
}

// Identity is the arc sequence alone — the cached fingerprint is derived
// state and must not affect equality or hashing.
impl PartialEq for Strategy {
    fn eq(&self, other: &Self) -> bool {
        self.arcs == other.arcs
    }
}

impl Eq for Strategy {}

impl Hash for Strategy {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.arcs.hash(state);
    }
}

impl Strategy {
    /// Validates an arc sequence as a path-form strategy.
    ///
    /// Requirements (Note 3):
    /// 1. the sequence is a permutation of all arcs;
    /// 2. it decomposes into consecutive *paths*, each starting at an
    ///    already-visited node, descending arc-to-arc, and ending at the
    ///    first retrieval arc it meets.
    ///
    /// # Errors
    /// [`GraphError::InvalidStrategy`] describing the first violation.
    pub fn from_arcs(g: &InferenceGraph, arcs: Vec<ArcId>) -> Result<Self, GraphError> {
        if arcs.len() != g.arc_count() {
            return Err(GraphError::InvalidStrategy(format!(
                "strategy has {} arcs, graph has {}",
                arcs.len(),
                g.arc_count()
            )));
        }
        let mut seen = vec![false; g.arc_count()];
        for &a in &arcs {
            if a.index() >= g.arc_count() {
                return Err(GraphError::BadArc(a.0));
            }
            if seen[a.index()] {
                return Err(GraphError::InvalidStrategy(format!("arc {a} appears twice")));
            }
            seen[a.index()] = true;
        }
        let s = Self::from_vec(arcs);
        s.decompose(g)?;
        Ok(s)
    }

    /// Internal constructor from an already-validated arc vector.
    fn from_vec(arcs: Vec<ArcId>) -> Self {
        Self { arcs, fingerprint: OnceLock::new() }
    }

    /// The canonical depth-first left-to-right strategy (e.g. the paper's
    /// `Θ_ABCD` on `G_B`).
    pub fn left_to_right(g: &InferenceGraph) -> Self {
        let orders: Vec<Vec<ArcId>> = g.node_ids().map(|n| g.children(n).to_vec()).collect();
        Self::dfs_from_orders(g, &orders).expect("left-to-right DFS is always valid")
    }

    /// Builds the depth-first strategy induced by a child ordering at
    /// each node (`orders[node.index()]` is a permutation of
    /// `g.children(node)`).
    ///
    /// # Errors
    /// [`GraphError::InvalidStrategy`] if some order is not a permutation
    /// of the node's children.
    pub fn dfs_from_orders(g: &InferenceGraph, orders: &[Vec<ArcId>]) -> Result<Self, GraphError> {
        if orders.len() != g.node_count() {
            return Err(GraphError::InvalidStrategy(format!(
                "need orders for {} nodes, got {}",
                g.node_count(),
                orders.len()
            )));
        }
        for n in g.node_ids() {
            let mut want = g.children(n).to_vec();
            let mut have = orders[n.index()].clone();
            want.sort();
            have.sort();
            if want != have {
                return Err(GraphError::InvalidStrategy(format!(
                    "orders[{}] is not a permutation of that node's children",
                    n.index()
                )));
            }
        }
        let mut arcs = Vec::with_capacity(g.arc_count());
        fn rec(g: &InferenceGraph, n: NodeId, orders: &[Vec<ArcId>], out: &mut Vec<ArcId>) {
            for &a in &orders[n.index()] {
                out.push(a);
                rec(g, g.arc(a).to, orders, out);
            }
        }
        rec(g, g.root(), orders, &mut arcs);
        Self::from_arcs(g, arcs)
    }

    /// Relaxed validation for general (possibly non-tree) graphs: each
    /// arc must be *reachable-in-order* (its source is the root or the
    /// target of an earlier arc) and appear at most once, but the
    /// sequence need not cover every arc nor decompose into
    /// retrieval-terminated paths. On redundant graphs (the paper's
    /// Note-5 `{A :- B. B :- C. A :- C.}` example) a correct strategy may
    /// attempt *all* reductions into a shared node before its single
    /// retrieval — a shape the tree-only path form cannot express.
    ///
    /// Relaxed strategies execute normally ([`crate::context::execute`]
    /// skips arcs whose source was never reached) but are rejected by the
    /// tree-specific analyses ([`Strategy::paths`], `Υ_AOT`).
    ///
    /// # Errors
    /// [`GraphError::InvalidStrategy`] on duplicates or an arc whose
    /// source can never have been reached.
    pub fn from_arcs_relaxed(g: &InferenceGraph, arcs: Vec<ArcId>) -> Result<Self, GraphError> {
        let mut seen = vec![false; g.arc_count()];
        let mut targeted = vec![false; g.node_count()];
        targeted[g.root().index()] = true;
        for &a in &arcs {
            if a.index() >= g.arc_count() {
                return Err(GraphError::BadArc(a.0));
            }
            if seen[a.index()] {
                return Err(GraphError::InvalidStrategy(format!("arc {a} appears twice")));
            }
            seen[a.index()] = true;
            if !targeted[g.arc(a).from.index()] {
                return Err(GraphError::InvalidStrategy(format!(
                    "arc {a} can never be attempted: no earlier arc reaches its source"
                )));
            }
            targeted[g.arc(a).to.index()] = true;
        }
        Ok(Self::from_vec(arcs))
    }

    /// The arc sequence.
    pub fn arcs(&self) -> &[ArcId] {
        &self.arcs
    }

    /// Order-sensitive 64-bit fingerprint of the arc sequence, computed
    /// once and cached (the sequence is immutable after construction).
    /// Used by the engine's `RunCache` validity stamp and by
    /// [`crate::program::StrategyProgram`] to tie a compiled program to
    /// its source strategy without re-hashing the arc vector per run.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            // FNV offset basis seeded, splitmix-style mixing per arc;
            // position-sensitive because the running hash feeds the mix.
            let mut h = 0x1000_0000_01b3u64;
            for &a in &self.arcs {
                let mut z = h ^ (a.index() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h = z ^ (z >> 31);
            }
            h
        })
    }

    /// Position of `a` in the sequence, if present.
    pub fn position(&self, a: ArcId) -> Option<usize> {
        self.arcs.iter().position(|&x| x == a)
    }

    /// Note 3's path decomposition: each path is a maximal descending run
    /// ending at a retrieval. Returns index ranges into
    /// [`arcs`](Self::arcs).
    ///
    /// # Errors
    /// [`GraphError::InvalidStrategy`] if the sequence is not path-form.
    pub fn decompose(&self, g: &InferenceGraph) -> Result<Vec<std::ops::Range<usize>>, GraphError> {
        let mut visited = vec![false; g.node_count()];
        visited[g.root().index()] = true;
        let mut paths = Vec::new();
        let mut i = 0;
        while i < self.arcs.len() {
            let start = i;
            let first = g.arc(self.arcs[i]);
            if !visited[first.from.index()] {
                return Err(GraphError::InvalidStrategy(format!(
                    "path at position {i} starts from unvisited node `{}`",
                    g.node(first.from).label
                )));
            }
            // Descend until a retrieval.
            loop {
                let arc = g.arc(self.arcs[i]);
                visited[arc.to.index()] = true;
                i += 1;
                match arc.kind {
                    ArcKind::Retrieval => break,
                    ArcKind::Reduction => {
                        if i >= self.arcs.len() {
                            return Err(GraphError::InvalidStrategy(
                                "strategy ends mid-path (no terminating retrieval)".into(),
                            ));
                        }
                        let next = g.arc(self.arcs[i]);
                        if next.from != arc.to {
                            return Err(GraphError::InvalidStrategy(format!(
                                "path broken at position {i}: `{}` does not descend from `{}`",
                                next.label, arc.label
                            )));
                        }
                    }
                }
            }
            paths.push(start..i);
        }
        Ok(paths)
    }

    /// The paths as arc-id vectors (convenience over
    /// [`decompose`](Self::decompose)).
    pub fn paths(&self, g: &InferenceGraph) -> Vec<Vec<ArcId>> {
        self.decompose(g)
            .expect("constructed strategies are path-form")
            .into_iter()
            .map(|r| self.arcs[r].to_vec())
            .collect()
    }

    /// Whether this strategy is depth-first: every arc's subtree occupies
    /// a contiguous run of the sequence.
    pub fn is_depth_first(&self, g: &InferenceGraph) -> bool {
        for a in g.arc_ids() {
            let subtree = g.subtree_arcs(a);
            let positions: Vec<usize> = subtree
                .iter()
                .map(|&x| self.position(x).expect("strategy covers all arcs"))
                .collect();
            let min = *positions.iter().min().expect("subtree non-empty");
            let max = *positions.iter().max().expect("subtree non-empty");
            if max - min + 1 != subtree.len() {
                return false;
            }
        }
        true
    }

    /// Renders labels, e.g. `⟨R_p D_p R_g D_g⟩`.
    pub fn display<'a>(&'a self, g: &'a InferenceGraph) -> impl fmt::Display + 'a {
        DisplayStrategy { s: self, g }
    }

    /// The per-node child ordering this strategy induces (first
    /// appearance order of each node's children).
    pub fn child_orders(&self, g: &InferenceGraph) -> Vec<Vec<ArcId>> {
        let mut orders: Vec<Vec<ArcId>> = vec![Vec::new(); g.node_count()];
        for &a in &self.arcs {
            orders[g.arc(a).from.index()].push(a);
        }
        orders
    }
}

struct DisplayStrategy<'a> {
    s: &'a Strategy,
    g: &'a InferenceGraph,
}

impl fmt::Display for DisplayStrategy<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, &a) in self.s.arcs.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", self.g.arc(a).label)?;
        }
        write!(f, "⟩")
    }
}

/// Enumerates **all** path-form strategies of a tree-shaped graph.
///
/// The count grows super-exponentially; `limit` caps the number of
/// strategies produced (`None` in the result signals truncation at the
/// cap — callers treat that as "graph too big for brute force").
pub fn enumerate_all(g: &InferenceGraph, limit: usize) -> Option<Vec<Strategy>> {
    let mut out = Vec::new();
    let mut visited = vec![false; g.node_count()];
    visited[g.root().index()] = true;
    let mut used = vec![false; g.arc_count()];
    let mut seq: Vec<ArcId> = Vec::with_capacity(g.arc_count());

    // One "move" = a full path: from a visited node, descend through
    // unused arcs to the first retrieval. Enumerate all such paths.
    fn paths_from(g: &InferenceGraph, visited: &[bool], used: &[bool]) -> Vec<Vec<ArcId>> {
        let mut all = Vec::new();
        for n in g.node_ids() {
            if !visited[n.index()] {
                continue;
            }
            // DFS over descending arc choices.
            let mut stack: Vec<Vec<ArcId>> =
                g.children(n).iter().filter(|a| !used[a.index()]).map(|&a| vec![a]).collect();
            while let Some(path) = stack.pop() {
                let last = *path.last().expect("paths are non-empty");
                match g.arc(last).kind {
                    ArcKind::Retrieval => all.push(path),
                    ArcKind::Reduction => {
                        for &c in g.children(g.arc(last).to) {
                            if !used[c.index()] {
                                let mut p = path.clone();
                                p.push(c);
                                stack.push(p);
                            }
                        }
                    }
                }
            }
        }
        all
    }

    fn rec(
        g: &InferenceGraph,
        visited: &mut Vec<bool>,
        used: &mut Vec<bool>,
        seq: &mut Vec<ArcId>,
        out: &mut Vec<Strategy>,
        limit: usize,
    ) -> bool {
        if seq.len() == g.arc_count() {
            if out.len() >= limit {
                return false;
            }
            out.push(Strategy::from_vec(seq.clone()));
            return true;
        }
        for path in paths_from(g, visited, used) {
            let marks: Vec<NodeId> = path.iter().map(|&a| g.arc(a).to).collect();
            for &a in &path {
                used[a.index()] = true;
                seq.push(a);
            }
            let undo: Vec<bool> = marks.iter().map(|m| visited[m.index()]).collect();
            for m in &marks {
                visited[m.index()] = true;
            }
            let ok = rec(g, visited, used, seq, out, limit);
            for (m, was) in marks.iter().zip(undo) {
                visited[m.index()] = was;
            }
            for &a in &path {
                used[a.index()] = false;
                seq.pop();
            }
            if !ok {
                return false;
            }
        }
        true
    }

    let complete = rec(g, &mut visited, &mut used, &mut seq, &mut out, limit);
    complete.then_some(out)
}

/// Enumerates all **depth-first** strategies (one per combination of
/// child orderings), capped at `limit`.
pub fn enumerate_dfs(g: &InferenceGraph, limit: usize) -> Option<Vec<Strategy>> {
    fn permutations(items: &[ArcId]) -> Vec<Vec<ArcId>> {
        if items.is_empty() {
            return vec![Vec::new()];
        }
        let mut out = Vec::new();
        for (i, &x) in items.iter().enumerate() {
            let mut rest = items.to_vec();
            rest.remove(i);
            for mut p in permutations(&rest) {
                p.insert(0, x);
                out.push(p);
            }
        }
        out
    }
    let per_node: Vec<Vec<Vec<ArcId>>> =
        g.node_ids().map(|n| permutations(g.children(n))).collect();
    let mut out = Vec::new();
    let mut current: Vec<Vec<ArcId>> = vec![Vec::new(); g.node_count()];
    fn rec(
        g: &InferenceGraph,
        per_node: &[Vec<Vec<ArcId>>],
        idx: usize,
        current: &mut Vec<Vec<ArcId>>,
        out: &mut Vec<Strategy>,
        limit: usize,
    ) -> bool {
        if idx == per_node.len() {
            if out.len() >= limit {
                return false;
            }
            out.push(
                Strategy::dfs_from_orders(g, current).expect("permuted child orders are valid"),
            );
            return true;
        }
        for perm in &per_node[idx] {
            current[idx] = perm.clone();
            if !rec(g, per_node, idx + 1, current, out, limit) {
                return false;
            }
        }
        true
    }
    let complete = rec(g, &per_node, 0, &mut current, &mut out, limit);
    complete.then_some(out)
}

/// Counts the depth-first strategies of `g` (`Π_nodes (#children)!`)
/// without enumerating them.
pub fn count_dfs(g: &InferenceGraph) -> f64 {
    fn factorial(k: usize) -> f64 {
        (1..=k).map(|x| x as f64).product()
    }
    g.node_ids().map(|n| factorial(g.children(n).len())).product()
}

/// A map from child-order signatures to avoid duplicate strategies in
/// randomized search; exposed for the learning crate's tests.
pub fn signature(s: &Strategy) -> Vec<u32> {
    s.arcs.iter().map(|a| a.0).collect()
}

/// Convenience: per-node child orders as a `HashMap` keyed by node.
pub fn orders_by_node(g: &InferenceGraph, s: &Strategy) -> HashMap<NodeId, Vec<ArcId>> {
    s.child_orders(g)
        .into_iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(i, v)| (NodeId(i as u32), v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn g_a() -> InferenceGraph {
        let mut b = GraphBuilder::new("instructor(κ)");
        let root = b.root();
        let (_, prof) = b.reduction(root, "R_p", 1.0, "prof(κ)");
        b.retrieval(prof, "D_p", 1.0);
        let (_, grad) = b.reduction(root, "R_g", 1.0, "grad(κ)");
        b.retrieval(grad, "D_g", 1.0);
        b.finish().unwrap()
    }

    fn g_b() -> InferenceGraph {
        let mut b = GraphBuilder::new("G(κ)");
        let root = b.root();
        let (_, a) = b.reduction(root, "R_ga", 1.0, "A(κ)");
        b.retrieval(a, "D_a", 1.0);
        let (_, s) = b.reduction(root, "R_gs", 1.0, "S(κ)");
        let (_, bb) = b.reduction(s, "R_sb", 1.0, "B(κ)");
        b.retrieval(bb, "D_b", 1.0);
        let (_, t) = b.reduction(s, "R_st", 1.0, "T(κ)");
        let (_, c) = b.reduction(t, "R_tc", 1.0, "C(κ)");
        b.retrieval(c, "D_c", 1.0);
        let (_, d) = b.reduction(t, "R_td", 1.0, "D(κ)");
        b.retrieval(d, "D_d", 1.0);
        b.finish().unwrap()
    }

    fn by_labels(g: &InferenceGraph, labels: &[&str]) -> Vec<ArcId> {
        labels.iter().map(|l| g.arc_by_label(l).unwrap()).collect()
    }

    #[test]
    fn left_to_right_matches_theta_abcd() {
        let g = g_b();
        let s = Strategy::left_to_right(&g);
        let labels: Vec<&str> = s.arcs().iter().map(|&a| g.arc(a).label.as_str()).collect();
        assert_eq!(
            labels,
            ["R_ga", "D_a", "R_gs", "R_sb", "D_b", "R_st", "R_tc", "D_c", "R_td", "D_d"],
            "Equation 4's Θ_ABCD"
        );
    }

    #[test]
    fn theta_abcd_paths_match_note_3() {
        let g = g_b();
        let s = Strategy::left_to_right(&g);
        let paths: Vec<Vec<String>> = s
            .paths(&g)
            .into_iter()
            .map(|p| p.iter().map(|&a| g.arc(a).label.clone()).collect())
            .collect();
        assert_eq!(
            paths,
            vec![
                vec!["R_ga", "D_a"],
                vec!["R_gs", "R_sb", "D_b"],
                vec!["R_st", "R_tc", "D_c"],
                vec!["R_td", "D_d"],
            ]
        );
    }

    #[test]
    fn both_g_a_strategies_valid() {
        let g = g_a();
        let t1 = Strategy::from_arcs(&g, by_labels(&g, &["R_p", "D_p", "R_g", "D_g"])).unwrap();
        let t2 = Strategy::from_arcs(&g, by_labels(&g, &["R_g", "D_g", "R_p", "D_p"])).unwrap();
        assert_eq!(t1.paths(&g).len(), 2);
        assert_eq!(t2.paths(&g).len(), 2);
    }

    #[test]
    fn interleaved_prefix_rejected() {
        // ⟨R_p R_g D_p D_g⟩ breaks the path ⟨R_p …⟩ before its retrieval.
        let g = g_a();
        let err = Strategy::from_arcs(&g, by_labels(&g, &["R_p", "R_g", "D_p", "D_g"]));
        assert!(matches!(err, Err(GraphError::InvalidStrategy(_))));
    }

    #[test]
    fn orphan_path_rejected() {
        // Starting at D_p before R_p: source node not yet visited.
        let g = g_a();
        let err = Strategy::from_arcs(&g, by_labels(&g, &["D_p", "R_p", "R_g", "D_g"]));
        assert!(matches!(err, Err(GraphError::InvalidStrategy(_))));
    }

    #[test]
    fn incomplete_strategy_rejected() {
        let g = g_a();
        let err = Strategy::from_arcs(&g, by_labels(&g, &["R_p", "D_p"]));
        assert!(matches!(err, Err(GraphError::InvalidStrategy(_))));
    }

    #[test]
    fn duplicate_arc_rejected() {
        let g = g_a();
        let err = Strategy::from_arcs(&g, by_labels(&g, &["R_p", "D_p", "R_p", "D_g"]));
        assert!(matches!(err, Err(GraphError::InvalidStrategy(_))));
    }

    #[test]
    fn non_dfs_path_form_strategy_is_valid() {
        // On G_B: visit ⟨R_gs R_sb D_b⟩, then ⟨R_ga D_a⟩, then the rest —
        // the R_gs subtree is interrupted, so not depth-first, but each
        // segment is a legal path.
        let g = g_b();
        let s = Strategy::from_arcs(
            &g,
            by_labels(
                &g,
                &["R_gs", "R_sb", "D_b", "R_ga", "D_a", "R_st", "R_tc", "D_c", "R_td", "D_d"],
            ),
        )
        .unwrap();
        assert!(!s.is_depth_first(&g));
        assert!(Strategy::left_to_right(&g).is_depth_first(&g));
        assert_eq!(s.paths(&g).len(), 4);
    }

    #[test]
    fn enumerate_all_g_a() {
        let g = g_a();
        let all = enumerate_all(&g, 1000).unwrap();
        // Only two orders: prof-first and grad-first.
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn enumerate_dfs_g_b_count() {
        let g = g_b();
        // Nodes with >1 child: root (2), S (2), T (2) → 2·2·2 = 8.
        assert_eq!(count_dfs(&g), 8.0);
        let all = enumerate_dfs(&g, 1000).unwrap();
        assert_eq!(all.len(), 8);
        // All distinct.
        let mut sigs: Vec<Vec<u32>> = all.iter().map(signature).collect();
        sigs.sort();
        sigs.dedup();
        assert_eq!(sigs.len(), 8);
    }

    #[test]
    fn enumerate_all_supersedes_dfs() {
        let g = g_b();
        let all = enumerate_all(&g, 100_000).unwrap();
        let dfs = enumerate_dfs(&g, 1000).unwrap();
        assert!(
            all.len() > dfs.len(),
            "path-form space strictly larger: {} vs {}",
            all.len(),
            dfs.len()
        );
        for s in &dfs {
            assert!(all.iter().any(|t| t.arcs() == s.arcs()), "every DFS strategy is path-form");
        }
    }

    #[test]
    fn enumeration_cap_reports_truncation() {
        let g = g_b();
        assert!(enumerate_all(&g, 3).is_none());
    }

    #[test]
    fn child_orders_round_trip() {
        let g = g_b();
        for s in enumerate_dfs(&g, 1000).unwrap() {
            let orders = s.child_orders(&g);
            let rebuilt = Strategy::dfs_from_orders(&g, &orders).unwrap();
            assert_eq!(rebuilt.arcs(), s.arcs());
        }
    }

    #[test]
    fn display_renders_labels() {
        let g = g_a();
        let s = Strategy::left_to_right(&g);
        assert_eq!(s.display(&g).to_string(), "⟨R_p D_p R_g D_g⟩");
    }

    #[test]
    fn relaxed_allows_partial_and_non_path_sequences() {
        let g = g_b();
        let by = |l: &str| g.arc_by_label(l).unwrap();
        // A prefix that stops mid-path: fine under relaxed rules.
        let s = Strategy::from_arcs_relaxed(&g, vec![by("R_gs"), by("R_st")]).unwrap();
        assert_eq!(s.arcs().len(), 2);
        // Still rejects unreachable and duplicate arcs.
        assert!(Strategy::from_arcs_relaxed(&g, vec![by("R_st")]).is_err());
        assert!(Strategy::from_arcs_relaxed(&g, vec![by("R_gs"), by("R_gs")]).is_err());
    }

    #[test]
    fn relaxed_strategies_execute() {
        let g = g_b();
        let by = |l: &str| g.arc_by_label(l).unwrap();
        let s = Strategy::from_arcs_relaxed(&g, vec![by("R_ga"), by("D_a")]).unwrap();
        let ctx = crate::context::Context::all_open(&g);
        let trace = crate::context::execute(&g, &s, &ctx);
        assert!(trace.outcome.is_success());
        assert_eq!(trace.cost, 2.0);
    }

    #[test]
    fn dfs_orders_validated() {
        let g = g_a();
        let mut orders: Vec<Vec<ArcId>> = g.node_ids().map(|n| g.children(n).to_vec()).collect();
        orders[0].pop(); // break the permutation
        assert!(matches!(
            Strategy::dfs_from_orders(&g, &orders),
            Err(GraphError::InvalidStrategy(_))
        ));
    }
}
