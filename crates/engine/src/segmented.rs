//! Horizontally segmented distributed databases (Section 5.2).
//!
//! "One obvious additional database application is deciding on the order
//! in which to scan a set of horizontally segmented distributed
//! databases … Given a query like `age(russ, X)`, we would like to scan
//! these files in the appropriate order — hoping to find the file dealing
//! with russ facts as early as possible."
//!
//! [`SegmentedDb`] holds one [`Database`] per physical segment and
//! exposes the scan problem as a *flat* inference graph: the root goal
//! has one retrieval arc per segment (with per-segment probe costs —
//! remote segments can cost more), and a segment's arc is blocked in a
//! context iff the query matches nothing stored there. All of PIB/PAO
//! then applies verbatim: learning a scan order *is* learning a strategy.

use qpl_datalog::{Atom, Database, Substitution};
use qpl_graph::context::{execute, Context, RunOutcome, Trace};
use qpl_graph::graph::{GraphBuilder, InferenceGraph};
use qpl_graph::strategy::Strategy;
use qpl_graph::{ArcId, GraphError};

/// A horizontally segmented database: the same schema in every segment,
/// rows scattered across them.
#[derive(Debug, Clone, Default)]
pub struct SegmentedDb {
    segments: Vec<(String, Database)>,
}

impl SegmentedDb {
    /// Creates an empty segmented store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named segment, returning its index.
    pub fn add_segment(&mut self, name: &str, db: Database) -> usize {
        self.segments.push((name.to_owned(), db));
        self.segments.len() - 1
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// A segment by index.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn segment(&self, i: usize) -> &Database {
        &self.segments[i].1
    }

    /// Builds the flat scan graph: one retrieval arc per segment, with
    /// `probe_cost(i)` as the cost of scanning segment `i`.
    ///
    /// # Errors
    /// Graph validation errors (e.g. non-positive costs).
    pub fn scan_graph(
        &self,
        goal_label: &str,
        mut probe_cost: impl FnMut(usize) -> f64,
    ) -> Result<InferenceGraph, GraphError> {
        let mut b = GraphBuilder::new(goal_label);
        let root = b.root();
        for (i, (name, _)) in self.segments.iter().enumerate() {
            b.retrieval(root, name, probe_cost(i));
        }
        b.finish()
    }

    /// Classifies a query into a scan context: segment arc `i` is blocked
    /// iff segment `i` holds no match for the query.
    ///
    /// # Panics
    /// Panics if `graph` was not built by [`scan_graph`](Self::scan_graph)
    /// over this store (arc count mismatch).
    pub fn classify(&self, graph: &InferenceGraph, query: &Atom) -> Context {
        assert_eq!(graph.arc_count(), self.segments.len(), "graph/segment mismatch");
        Context::from_fn(graph, |a| {
            let (_, db) = &self.segments[a.index()];
            if query.is_ground() {
                !db.contains_atom(query)
            } else {
                db.matches(query, &Substitution::new()).is_empty()
            }
        })
    }

    /// Scans segments in strategy order, returning the serving segment
    /// (by index) and the trace.
    pub fn scan(
        &self,
        graph: &InferenceGraph,
        strategy: &Strategy,
        query: &Atom,
    ) -> (Option<usize>, Trace) {
        let ctx = self.classify(graph, query);
        let trace = execute(graph, strategy, &ctx);
        let hit = match trace.outcome {
            RunOutcome::Succeeded(arc) => Some(arc.index()),
            RunOutcome::Exhausted => None,
        };
        (hit, trace)
    }

    /// The segment arc ids in index order (flat graph: arc i = segment i).
    pub fn segment_arcs(&self, graph: &InferenceGraph) -> Vec<ArcId> {
        graph.arc_ids().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_datalog::parser::parse_query;
    use qpl_datalog::{Fact, SymbolTable};

    /// Three "files" of person facts, split by region.
    fn setup() -> (SymbolTable, SegmentedDb) {
        let mut t = SymbolTable::new();
        let age = t.intern("age");
        let mut s = SegmentedDb::new();
        let mut east = Database::new();
        east.insert(Fact::new(age, vec![t.intern("russ"), t.intern("a40")])).unwrap();
        let mut west = Database::new();
        west.insert(Fact::new(age, vec![t.intern("manolis"), t.intern("a30")])).unwrap();
        let north = Database::new();
        s.add_segment("east", east);
        s.add_segment("west", west);
        s.add_segment("north", north);
        (t, s)
    }

    #[test]
    fn scan_finds_the_right_segment() {
        let (mut t, s) = setup();
        let g = s.scan_graph("age(b,f)", |_| 1.0).unwrap();
        let strat = Strategy::left_to_right(&g);
        let (hit, trace) = s.scan(&g, &strat, &parse_query("age(russ, X)", &mut t).unwrap());
        assert_eq!(hit, Some(0));
        assert_eq!(trace.cost, 1.0, "east first → immediate hit");
        let (hit, trace) = s.scan(&g, &strat, &parse_query("age(manolis, X)", &mut t).unwrap());
        assert_eq!(hit, Some(1));
        assert_eq!(trace.cost, 2.0, "east misses, west hits");
    }

    #[test]
    fn missing_person_scans_all_segments() {
        let (mut t, s) = setup();
        let g = s.scan_graph("age(b,f)", |_| 1.0).unwrap();
        let strat = Strategy::left_to_right(&g);
        let (hit, trace) = s.scan(&g, &strat, &parse_query("age(ghost, X)", &mut t).unwrap());
        assert_eq!(hit, None);
        assert_eq!(trace.cost, 3.0);
    }

    #[test]
    fn per_segment_costs_model_remote_files() {
        let (mut t, s) = setup();
        // west is remote: 10× the probe cost.
        let g = s.scan_graph("age(b,f)", |i| if i == 1 { 10.0 } else { 1.0 }).unwrap();
        let strat = Strategy::left_to_right(&g);
        let (_, trace) = s.scan(&g, &strat, &parse_query("age(manolis, X)", &mut t).unwrap());
        assert_eq!(trace.cost, 11.0);
    }

    #[test]
    fn scan_order_is_a_strategy() {
        // Reordering the scan changes cost exactly as strategy theory
        // predicts; the learning stack can optimize it.
        let (mut t, s) = setup();
        let g = s.scan_graph("age(b,f)", |_| 1.0).unwrap();
        let q = parse_query("age(manolis, X)", &mut t).unwrap();
        let west_first = Strategy::from_arcs(&g, vec![ArcId(1), ArcId(0), ArcId(2)]).unwrap();
        let (hit, trace) = s.scan(&g, &west_first, &q);
        assert_eq!(hit, Some(1));
        assert_eq!(trace.cost, 1.0);
    }

    #[test]
    fn classify_matches_open_segments() {
        let (mut t, s) = setup();
        let g = s.scan_graph("age(b,f)", |_| 1.0).unwrap();
        let ctx = s.classify(&g, &parse_query("age(russ, X)", &mut t).unwrap());
        assert!(!ctx.is_blocked(ArcId(0)), "east has russ");
        assert!(ctx.is_blocked(ArcId(1)));
        assert!(ctx.is_blocked(ArcId(2)));
    }
}
