//! Interned symbols for predicate and constant names.
//!
//! All names in a knowledge base are interned once into a [`SymbolTable`]
//! and referred to by a 4-byte [`Symbol`] thereafter; facts are then plain
//! `Vec<Symbol>` rows, comparisons are integer compares, and the database
//! never touches string hashing on the hot retrieval path.

use std::collections::HashMap;
use std::fmt;

/// An interned name (predicate or constant). Cheap to copy and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// The raw index into the owning [`SymbolTable`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional interner: `&str → Symbol` and `Symbol → &str`.
///
/// # Examples
/// ```
/// use qpl_datalog::SymbolTable;
/// let mut t = SymbolTable::new();
/// let a = t.intern("prof");
/// let b = t.intern("prof");
/// assert_eq!(a, b);
/// assert_eq!(t.name(a), "prof");
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    by_name: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing symbol if already present.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let s = Symbol(u32::try_from(self.names.len()).expect("symbol table overflow"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), s);
        s
    }

    /// Looks up a symbol without interning.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// The string for `s`.
    ///
    /// # Panics
    /// Panics if `s` belongs to a different table.
    pub fn name(&self, s: Symbol) -> &str {
        &self.names[s.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("x");
        let b = t.intern("x");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("x");
        let b = t.intern("y");
        assert_ne!(a, b);
        assert_eq!(t.name(a), "x");
        assert_eq!(t.name(b), "y");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = SymbolTable::new();
        assert_eq!(t.lookup("missing"), None);
        let s = t.intern("present");
        assert_eq!(t.lookup("present"), Some(s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_in_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let names: Vec<_> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn empty_table() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
