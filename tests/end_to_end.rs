//! Full-stack scenario tests: Datalog text in, learned strategies out.

use qpl::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small content-routing knowledge base: a document can be found via
/// several catalogues with very different hit rates.
const LIBRARY_KB: &str = "
    located(X) :- in_reading_room(X).
    located(X) :- in_stacks(X).
    located(X) :- in_annex(X).
    located(X) :- on_loan(X).
    in_stacks(b1). in_stacks(b2). in_stacks(b3). in_stacks(b4).
    in_annex(b5).
    on_loan(b6).
";

#[test]
fn library_scenario_learns_stacks_first() {
    let mut table = SymbolTable::new();
    let program = parser::parse_program(LIBRARY_KB, &mut table).unwrap();
    let form = parser::parse_query_form("located(b)", &mut table).unwrap();
    let compiled = compile(&program.rules, &form, &table, &CompileOptions::default()).unwrap();
    let g = compiled.graph.clone();

    // Query mix: the books people ask for are mostly in the stacks.
    let mut queries = Vec::new();
    for b in ["b1", "b2", "b3", "b4"] {
        queries.push((parser::parse_query(&format!("located({b})"), &mut table).unwrap(), 0.2));
    }
    queries.push((parser::parse_query("located(b5)", &mut table).unwrap(), 0.1));
    queries.push((parser::parse_query("located(missing)", &mut table).unwrap(), 0.1));
    let mut oracle = QueryMixOracle::new(&compiled, program.facts.clone(), queries).unwrap();
    let truth = oracle.to_distribution();

    let initial = Strategy::left_to_right(&g);
    let c_init = truth.expected_cost(&g, &initial);
    let mut pib = Pib::new(&g, initial, PibConfig::new(0.05));
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..40_000 {
        let ctx = oracle.draw(&mut rng);
        pib.observe(&g, &ctx);
    }
    let c_final = truth.expected_cost(&g, pib.strategy());
    assert!(c_final < c_init - 0.5, "learning should help substantially: {c_init} → {c_final}");
    // The first retrieval of the learned strategy is the stacks.
    let first_retrieval = pib
        .strategy()
        .arcs()
        .iter()
        .copied()
        .find(|&a| g.arc(a).kind == ArcKind::Retrieval)
        .unwrap();
    assert!(
        g.arc(first_retrieval).label.contains("in_stacks"),
        "learned to try the stacks first, got {}",
        g.arc(first_retrieval).label
    );
}

#[test]
fn strategies_preserve_answers_through_learning() {
    // Whatever PIB does to the strategy, the engine's answers must stay
    // identical to the SLD oracle.
    let mut table = SymbolTable::new();
    let program = parser::parse_program(LIBRARY_KB, &mut table).unwrap();
    let form = parser::parse_query_form("located(b)", &mut table).unwrap();
    let compiled = compile(&program.rules, &form, &table, &CompileOptions::default()).unwrap();
    let g = compiled.graph.clone();
    let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.1));
    let model = IndependentModel::uniform(&g, 0.5).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    for round in 0..200 {
        pib.observe(&g, &ContextOracle::draw(&mut model.clone(), &mut rng));
        if round % 50 == 0 {
            let qp = QueryProcessor::new(&compiled, pib.strategy().clone());
            for b in ["b1", "b5", "b6", "ghost"] {
                let q = parser::parse_query(&format!("located({b})"), &mut table).unwrap();
                let got = qp.run(&q, &program.facts).unwrap().answer.is_yes();
                let want = qpl::datalog::topdown::TopDown::new(&program.rules, &program.facts)
                    .provable(&q)
                    .unwrap();
                assert_eq!(got, want, "answer drift on {b} after learning");
            }
        }
    }
}

#[test]
fn adaptive_sampler_covers_all_retrievals_under_skew() {
    // Even with an extremely skewed context distribution, QP^A fills
    // every counter.
    let mut table = SymbolTable::new();
    let program = parser::parse_program(LIBRARY_KB, &mut table).unwrap();
    let form = parser::parse_query_form("located(b)", &mut table).unwrap();
    let compiled = compile(&program.rules, &form, &table, &CompileOptions::default()).unwrap();
    let g = compiled.graph.clone();
    // 99% of queries hit the reading room (first retrieval) — wait, the
    // reading room has no facts, so it always fails; that's the skew.
    let truth = IndependentModel::from_retrieval_probs(&g, &[0.99, 0.9, 0.5, 0.2]).unwrap();
    let needed: Vec<u64> = g.retrievals().map(|_| 50).collect();
    let mut qp = AdaptiveQp::for_retrievals(&g, &needed);
    let mut rng = StdRng::seed_from_u64(5);
    let mut runs = 0;
    while !qp.done() {
        let ctx = truth.sample(&mut rng);
        qp.observe(&g, &ctx);
        runs += 1;
        assert!(runs < 100_000);
    }
    for stat in qp.stats() {
        assert!(stat.reached >= 50, "{} under-sampled", g.arc(stat.arc).label);
        assert!((stat.p_hat() - truth.prob(stat.arc)).abs() < 0.2);
    }
}

#[test]
fn first_k_and_naf_share_cost_model() {
    // The k=1 first-k executor and the plain executor agree everywhere;
    // the NAF wrapper preserves cost exactly (spot-checked here at the
    // facade level; unit tests cover the details).
    let (mut table, compiled, db) = qpl::workload::pauper();
    let g = compiled.graph.clone();
    let q = parser::parse_query("owns(midas, Y)", &mut table).unwrap();
    let ctx = classify_context(&compiled, &q, &db).unwrap();
    let s = Strategy::left_to_right(&g);
    let plain = qpl::graph::context::execute(&g, &s, &ctx);
    let k1 = qpl::engine::firstk::execute_first_k(&g, &s, &ctx, 1);
    assert_eq!(plain, k1.trace);
    let k2 = qpl::engine::firstk::execute_first_k(&g, &s, &ctx, 2);
    assert!(k2.trace.cost >= k1.trace.cost);
    assert_eq!(k2.answers.len(), 2, "midas owns two things");
}
