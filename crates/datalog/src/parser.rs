//! A small concrete syntax for knowledge bases.
//!
//! ```text
//! % comment
//! prof(russ).                      % ground fact → Database
//! instructor(X) :- prof(X).        % rule → RuleBase
//! grad(fred) :- admitted(fred, Y). % partially ground rule
//! ```
//!
//! Identifiers starting with a lowercase letter are constants/predicates;
//! identifiers starting with an uppercase letter or `_` are variables
//! (scoped to their clause). Separate entry points parse query atoms
//! (`instructor(manolis)`) and query forms (`instructor(b)`,
//! `path(b,f)`).

use crate::adornment::{Binding, QueryForm};
use crate::database::Database;
use crate::error::DatalogError;
use crate::rule::{Rule, RuleBase};
use crate::symbol::SymbolTable;
use crate::term::{Atom, Term, Var};
use std::collections::HashMap;

/// A parsed knowledge base: rules and ground facts.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Intensional part.
    pub rules: RuleBase,
    /// Extensional part.
    pub facts: Database,
}

/// Parses a whole program (facts and rules, one clause per `.`).
///
/// # Errors
/// Returns the first [`DatalogError`] encountered (parse error, unsafe
/// rule, or arity mismatch).
///
/// # Examples
/// ```
/// use qpl_datalog::{parser, SymbolTable};
/// let mut t = SymbolTable::new();
/// let p = parser::parse_program(
///     "instructor(X) :- prof(X).\n\
///      instructor(X) :- grad(X).\n\
///      prof(russ). grad(manolis).",
///     &mut t,
/// ).unwrap();
/// assert_eq!(p.rules.len(), 2);
/// assert_eq!(p.facts.len(), 2);
/// ```
pub fn parse_program(src: &str, table: &mut SymbolTable) -> Result<Program, DatalogError> {
    let mut prog = Program::default();
    for clause in ClauseIter::new(src) {
        let (text, line) = clause?;
        let mut p = Parser::new(&text, line, table);
        let (head, body) = p.clause()?;
        if body.is_empty() {
            let fact = head
                .to_fact()
                .ok_or_else(|| DatalogError::NonGroundFact(head.display(table).to_string()))?;
            prog.facts.insert(fact)?;
        } else {
            prog.rules.add(Rule::new(head, body)?);
        }
    }
    Ok(prog)
}

/// Parses a single query atom, e.g. `instructor(manolis)` or
/// `path(a, X)`. A trailing `?` or `.` is accepted and ignored.
pub fn parse_query(src: &str, table: &mut SymbolTable) -> Result<Atom, DatalogError> {
    let trimmed = src.trim().trim_end_matches(['?', '.']);
    let mut p = Parser::new(trimmed, 1, table);
    let atom = p.atom()?;
    p.expect_end()?;
    Ok(atom)
}

/// Parses a query form, e.g. `instructor(b)` or `path(b,f)`.
pub fn parse_query_form(src: &str, table: &mut SymbolTable) -> Result<QueryForm, DatalogError> {
    let trimmed = src.trim();
    let mut p = Parser::new(trimmed, 1, table);
    let name = p.identifier()?;
    p.consume('(')?;
    let mut pattern = Vec::new();
    if !p.peek_is(')') {
        loop {
            let tok = p.identifier()?;
            let b = match tok.as_str() {
                "b" => Binding::Bound,
                "f" => Binding::Free,
                other => {
                    return Err(
                        p.error(format!("expected `b` or `f` in adornment, found `{other}`"))
                    )
                }
            };
            pattern.push(b);
            if p.peek_is(',') {
                p.consume(',')?;
            } else {
                break;
            }
        }
    }
    p.consume(')')?;
    p.expect_end()?;
    let predicate = table.intern(&name);
    Ok(QueryForm::new(predicate, pattern))
}

/// Iterator over `.`-terminated clauses, tracking line numbers and
/// stripping `%` comments.
struct ClauseIter<'a> {
    rest: &'a str,
    line: usize,
}

impl<'a> ClauseIter<'a> {
    fn new(src: &'a str) -> Self {
        Self { rest: src, line: 1 }
    }
}

impl Iterator for ClauseIter<'_> {
    type Item = Result<(String, usize), DatalogError>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut clause = String::new();
        let mut start_line = self.line;
        let mut seen_content = false;
        let mut chars = self.rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '%' => {
                    // Skip to end of line.
                    for (j, d) in chars.by_ref() {
                        if d == '\n' {
                            self.line += 1;
                            let _ = j;
                            break;
                        }
                    }
                }
                '\n' => {
                    self.line += 1;
                    clause.push(' ');
                }
                '.' => {
                    self.rest = &self.rest[i + 1..];
                    if clause.trim().is_empty() {
                        return Some(Err(DatalogError::Parse {
                            line: self.line,
                            message: "empty clause before `.`".into(),
                        }));
                    }
                    return Some(Ok((clause, start_line)));
                }
                _ => {
                    if !seen_content && !c.is_whitespace() {
                        seen_content = true;
                        start_line = self.line;
                    }
                    clause.push(c);
                }
            }
        }
        self.rest = "";
        if clause.trim().is_empty() {
            None
        } else {
            Some(Err(DatalogError::Parse {
                line: start_line,
                message: "clause not terminated with `.`".into(),
            }))
        }
    }
}

/// Recursive-descent parser over a single clause.
struct Parser<'a, 't> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    table: &'t mut SymbolTable,
    vars: HashMap<String, Var>,
    _src: &'a str,
}

impl<'a, 't> Parser<'a, 't> {
    fn new(src: &'a str, line: usize, table: &'t mut SymbolTable) -> Self {
        Self { chars: src.chars().collect(), pos: 0, line, table, vars: HashMap::new(), _src: src }
    }

    fn error(&self, message: String) -> DatalogError {
        DatalogError::Parse { line: self.line, message }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.peek() == Some(c)
    }

    fn consume(&mut self, c: char) -> Result<(), DatalogError> {
        match self.peek() {
            Some(d) if d == c => {
                self.pos += 1;
                Ok(())
            }
            Some(d) => Err(self.error(format!("expected `{c}`, found `{d}`"))),
            None => Err(self.error(format!("expected `{c}`, found end of input"))),
        }
    }

    fn expect_end(&mut self) -> Result<(), DatalogError> {
        match self.peek() {
            None => Ok(()),
            Some(c) => Err(self.error(format!("unexpected trailing `{c}`"))),
        }
    }

    fn identifier(&mut self) -> Result<String, DatalogError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.chars.len() {
            let c = self.chars[self.pos];
            if c.is_alphanumeric() || c == '_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            let found =
                self.chars.get(self.pos).map_or("end of input".to_string(), |c| format!("`{c}`"));
            return Err(self.error(format!("expected identifier, found {found}")));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn term(&mut self) -> Result<Term, DatalogError> {
        let id = self.identifier()?;
        let first = id.chars().next().expect("identifier is non-empty");
        if first.is_uppercase() || first == '_' {
            let next_idx = self.vars.len() as u32;
            // `_` alone is an anonymous variable: always fresh.
            let v = if id == "_" {
                let v = Var(next_idx);
                self.vars.insert(format!("_anon{next_idx}"), v);
                v
            } else {
                *self.vars.entry(id).or_insert(Var(next_idx))
            };
            Ok(Term::Var(v))
        } else {
            Ok(Term::Const(self.table.intern(&id)))
        }
    }

    fn atom(&mut self) -> Result<Atom, DatalogError> {
        let name = self.identifier()?;
        let first = name.chars().next().expect("identifier is non-empty");
        if first.is_uppercase() {
            return Err(self.error(format!("predicate `{name}` must start lowercase")));
        }
        let predicate = self.table.intern(&name);
        let mut args = Vec::new();
        if self.peek_is('(') {
            self.consume('(')?;
            if !self.peek_is(')') {
                loop {
                    args.push(self.term()?);
                    if self.peek_is(',') {
                        self.consume(',')?;
                    } else {
                        break;
                    }
                }
            }
            self.consume(')')?;
        }
        Ok(Atom::new(predicate, args))
    }

    /// `head` or `head :- b1, …, bn` (no trailing `.` — the clause
    /// splitter removed it).
    fn clause(&mut self) -> Result<(Atom, Vec<Atom>), DatalogError> {
        let head = self.atom()?;
        let mut body = Vec::new();
        if self.peek_is(':') {
            self.consume(':')?;
            self.consume('-')?;
            loop {
                body.push(self.atom()?);
                if self.peek_is(',') {
                    self.consume(',')?;
                } else {
                    break;
                }
            }
        }
        self.expect_end()?;
        Ok((head, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_facts_and_rules() {
        let mut t = SymbolTable::new();
        let p = parse_program(
            "% the paper's Figure-1 knowledge base\n\
             instructor(X) :- prof(X).\n\
             instructor(X) :- grad(X).\n\
             prof(russ).\n\
             grad(manolis).",
            &mut t,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.facts.len(), 2);
        let prof = t.lookup("prof").unwrap();
        let russ = t.lookup("russ").unwrap();
        assert!(p.facts.contains(prof, &[russ]));
    }

    #[test]
    fn variables_scoped_per_clause() {
        let mut t = SymbolTable::new();
        let p = parse_program("a(X) :- b(X). c(X) :- d(X).", &mut t).unwrap();
        // Both clauses reuse Var(0); they must not interfere.
        for (_, r) in p.rules.iter() {
            assert_eq!(r.head.variables(), vec![Var(0)]);
        }
    }

    #[test]
    fn conjunctive_bodies() {
        let mut t = SymbolTable::new();
        let p = parse_program("gp(X, Z) :- parent(X, Y), parent(Y, Z).", &mut t).unwrap();
        let (_, r) = p.rules.iter().next().unwrap();
        assert_eq!(r.body.len(), 2);
        assert!(!r.is_disjunctive());
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let mut t = SymbolTable::new();
        // p(X) :- q(X, _), r(X, _).  — the two `_` must be distinct vars.
        let p = parse_program("p(X) :- q(X, _), r(X, _).", &mut t).unwrap();
        let (_, rule) = p.rules.iter().next().unwrap();
        let u = rule.body[0].args[1];
        let v = rule.body[1].args[1];
        assert_ne!(u, v);
    }

    #[test]
    fn non_ground_fact_rejected() {
        let mut t = SymbolTable::new();
        let err = parse_program("p(X).", &mut t).unwrap_err();
        assert!(matches!(err, DatalogError::NonGroundFact(_)));
    }

    #[test]
    fn unsafe_rule_rejected() {
        let mut t = SymbolTable::new();
        let err = parse_program("p(X) :- q(a).", &mut t).unwrap_err();
        assert!(matches!(err, DatalogError::UnsafeRule { .. }));
    }

    #[test]
    fn missing_period_reported_with_line() {
        let mut t = SymbolTable::new();
        let err = parse_program("p(a)", &mut t).unwrap_err();
        assert!(matches!(err, DatalogError::Parse { .. }));
    }

    #[test]
    fn garbage_reports_line_number() {
        let mut t = SymbolTable::new();
        let err = parse_program("p(a).\n\nq(((.", &mut t).unwrap_err();
        match err {
            DatalogError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn parse_query_accepts_question_mark() {
        let mut t = SymbolTable::new();
        let q = parse_query("instructor(manolis)?", &mut t).unwrap();
        assert!(q.is_ground());
        assert_eq!(q.display(&t).to_string(), "instructor(manolis)");
    }

    #[test]
    fn parse_query_with_variables() {
        let mut t = SymbolTable::new();
        let q = parse_query("age(russ, X)", &mut t).unwrap();
        assert!(!q.is_ground());
        assert_eq!(q.args[1], Term::Var(Var(0)));
    }

    #[test]
    fn parse_query_form_patterns() {
        let mut t = SymbolTable::new();
        let qf = parse_query_form("instructor(b)", &mut t).unwrap();
        assert_eq!(qf.adornment.0, vec![Binding::Bound]);
        let qf2 = parse_query_form("path(b,f)", &mut t).unwrap();
        assert_eq!(qf2.adornment.0, vec![Binding::Bound, Binding::Free]);
    }

    #[test]
    fn parse_query_form_rejects_other_letters() {
        let mut t = SymbolTable::new();
        assert!(parse_query_form("p(x)", &mut t).is_err());
    }

    #[test]
    fn zero_arity_atoms_parse() {
        let mut t = SymbolTable::new();
        let p = parse_program("halt.\nspin :- halt.", &mut t).unwrap();
        assert_eq!(p.facts.len(), 1);
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn comments_stripped_everywhere() {
        let mut t = SymbolTable::new();
        let p =
            parse_program("p(a). % trailing comment\n% full-line comment\nq(b).", &mut t).unwrap();
        assert_eq!(p.facts.len(), 2);
    }
}
