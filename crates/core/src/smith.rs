//! The \[Smi89\]-style fact-count baseline (Section 2's critique target).
//!
//! "\[Smi89\] presents one way of approximating their values, based on the
//! (questionable) assumption that these probabilities are correlated
//! with the distribution of facts in the database. For example, assume
//! that the DB₂ database includes 2,000 facts of the form `prof^(b)` and
//! 500 facts of the form `grad^(b)` … that approach assumes that we are
//! 2000/500 = 4 times more likely to find the corresponding prof fact."
//!
//! [`SmithHeuristic`] estimates each retrieval's success probability
//! proportionally to its predicate's fact count and runs `Υ` on the
//! result. Experiment E2 reproduces the paper's critique: on the
//! adversarial "minors" query distribution the heuristic picks the wrong
//! strategy, while PIB/PAO — which observe the *queries* — do not.

use crate::upsilon::optimal_strategy;
use qpl_datalog::Database;
use qpl_graph::compile::{ArcBinding, CompiledGraph};
use qpl_graph::strategy::Strategy;
use qpl_graph::{GraphError, IndependentModel};

/// The fact-count probability estimator and the strategy it induces.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmithHeuristic;

impl SmithHeuristic {
    /// Estimates retrieval success probabilities from fact counts:
    /// `p̂(d) = count(pred(d)) / Σ count(pred(d'))`, normalized over the
    /// graph's retrievals (0.5 everywhere when the database is empty).
    /// Reductions are assumed never blocked.
    pub fn model(compiled: &CompiledGraph, db: &Database) -> IndependentModel {
        let g = &compiled.graph;
        let counts: Vec<(qpl_graph::ArcId, f64)> = g
            .retrievals()
            .map(|a| {
                let c = match compiled.binding(a) {
                    ArcBinding::Retrieval { predicate, .. } => db.fact_count(*predicate) as f64,
                    ArcBinding::Reduction { .. } => {
                        unreachable!("retrieval arc has a retrieval binding")
                    }
                };
                (a, c)
            })
            .collect();
        let total: f64 = counts.iter().map(|(_, c)| *c).sum();
        let mut model = IndependentModel::uniform(g, 1.0).expect("1.0 is valid");
        for (a, c) in counts {
            let p = if total > 0.0 { c / total } else { 0.5 };
            model.set_prob(a, p).expect("normalized counts are probabilities");
        }
        model
    }

    /// The strategy `Υ_AOT(G, p̂_counts)` the heuristic recommends.
    ///
    /// # Errors
    /// Optimizer errors (non-tree graph).
    pub fn strategy(compiled: &CompiledGraph, db: &Database) -> Result<Strategy, GraphError> {
        let model = Self::model(compiled, db);
        optimal_strategy(&compiled.graph, &model, 1_000_000).map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_datalog::parser::{parse_program, parse_query_form};
    use qpl_datalog::{Fact, SymbolTable};
    use qpl_graph::compile::{compile, CompileOptions};
    use qpl_graph::expected::{ContextDistribution, FiniteDistribution};
    use qpl_graph::Context;

    /// Figure-1 rules with the DB₂ statistics: 2000 prof, 500 grad facts.
    fn setup_db2() -> (SymbolTable, CompiledGraph, Database) {
        let mut t = SymbolTable::new();
        let p =
            parse_program("instructor(X) :- prof(X). instructor(X) :- grad(X).", &mut t).unwrap();
        let qf = parse_query_form("instructor(b)", &mut t).unwrap();
        let cg = compile(&p.rules, &qf, &t, &CompileOptions::default()).unwrap();
        let mut db = Database::new();
        let (prof, grad) = (t.lookup("prof").unwrap(), t.lookup("grad").unwrap());
        for i in 0..2000 {
            let c = t.intern(&format!("p{i}"));
            db.insert(Fact::new(prof, vec![c])).unwrap();
        }
        for i in 0..500 {
            let c = t.intern(&format!("g{i}"));
            db.insert(Fact::new(grad, vec![c])).unwrap();
        }
        (t, cg, db)
    }

    #[test]
    fn db2_statistics_give_prof_first() {
        // "that approach … would claim that Θ₁ is the optimal strategy."
        let (_, cg, db) = setup_db2();
        let model = SmithHeuristic::model(&cg, &db);
        let probs = model.retrieval_probs(&cg.graph);
        assert!((probs[0] - 0.8).abs() < 1e-12, "prof: 2000/2500");
        assert!((probs[1] - 0.2).abs() < 1e-12, "grad: 500/2500");
        let s = SmithHeuristic::strategy(&cg, &db).unwrap();
        // First arc must be the prof reduction.
        let first = cg.graph.arc(s.arcs()[0]).label.clone();
        assert!(first.contains("instructor"), "reduction from the root: {first}");
        let first_retrieval = s
            .arcs()
            .iter()
            .find(|&&a| cg.graph.arc(a).kind == qpl_graph::ArcKind::Retrieval)
            .copied()
            .unwrap();
        assert!(cg.graph.arc(first_retrieval).label.contains("prof"));
    }

    #[test]
    fn minors_distribution_defeats_the_heuristic() {
        // "The user may, for example, only ask questions that deal with
        // minors — here, none of the κᵢs … will be professors, meaning
        // Θ₂ is clearly the superior strategy."
        let (_, cg, db) = setup_db2();
        let g = &cg.graph;
        let smith = SmithHeuristic::strategy(&cg, &db).unwrap();
        // Minors: prof never holds; grad holds 40% of the time.
        let dp = g.retrievals().find(|&a| g.arc(a).label.contains("prof")).unwrap();
        let dg = g.retrievals().find(|&a| g.arc(a).label.contains("grad")).unwrap();
        let minors = FiniteDistribution::new(vec![
            (Context::with_blocked(g, &[dp]), 0.4),
            (Context::with_blocked(g, &[dp, dg]), 0.6),
        ])
        .unwrap();
        let c_smith = minors.expected_cost(g, &smith);
        // The true optimum under the minors distribution:
        let (_, c_opt) = crate::upsilon::brute_force_optimal(g, &minors, 1000).unwrap();
        assert!(
            c_smith > c_opt + 0.5,
            "heuristic cost {c_smith} should be clearly worse than optimal {c_opt}"
        );
    }

    #[test]
    fn empty_database_defaults_to_half() {
        let (_, cg, _) = setup_db2();
        let empty = Database::new();
        let model = SmithHeuristic::model(&cg, &empty);
        for p in model.retrieval_probs(&cg.graph) {
            assert!((p - 0.5).abs() < 1e-12);
        }
    }
}
