//! Bit-parallel batched context execution.
//!
//! A [`ContextBatch`] stores up to 64 sampled contexts in
//! structure-of-arrays form: one `u64` *blocked-bitplane per arc*, bit
//! `l` of plane `a` giving lane `l`'s blocked status for arc `a`.
//! [`execute_batch`] then runs a compiled [`StrategyProgram`] over all
//! lanes at once: each instruction ANDs the alive mask with the
//! traversed-plane of its source's parent arc (the bit-parallel form of
//! the scalar `reached[from]` check), pays its cost to every attempting
//! lane, and splits the attempt mask into traversed/blocked planes with
//! three bitwise ops. Lanes retire from `alive` the moment they succeed.
//!
//! Because lanes diverge, the batch executor cannot jump-thread the way
//! the scalar program does — it visits every instruction — but an
//! instruction whose attempt mask is zero costs two loads and an AND, so
//! the per-lane amortized work is still far below one tree-walk.
//!
//! ## Determinism contract
//!
//! Batch results are bit-identical to 64 scalar program runs,
//! lane-for-lane: per-lane cost accumulators add the same `f64`s in the
//! same (instruction) order the scalar executor would, outcomes and
//! reconstructed event sequences ([`BatchRun::events_into`]) match
//! exactly, and [`BatchRun::completion_into`] reproduces
//! [`crate::pessimistic_completion`] in plane form. Combined with the
//! engine's fixed 64-sample blocks (`DEFAULT_BLOCK`), one batch = one
//! block, so batched learners make byte-identical decisions at every
//! worker count.
//!
//! An `active` input mask supports mid-batch restarts: when a learner
//! climbs to a new strategy halfway through draining a batch, the
//! remaining lanes re-run under the new program with the drained lanes
//! masked out.

use crate::context::{ArcOutcome, Context, RunOutcome};
use crate::error::GraphError;
use crate::graph::{ArcId, ArcKind, InferenceGraph};
use crate::program::{StrategyProgram, NO_INDEX};

/// Number of context lanes in one batch word.
pub const LANES: usize = 64;

/// Up to [`LANES`] contexts in structure-of-arrays form: one `u64`
/// blocked-bitplane per arc, bit `l` = lane `l`'s status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextBatch {
    planes: Vec<u64>,
    lanes: usize,
}

impl ContextBatch {
    /// An all-open batch of `lanes` contexts over `arc_count` arcs.
    ///
    /// # Panics
    /// Invariant assert: panics if `lanes` exceeds [`LANES`]. Internal
    /// hot paths size batches from [`LANES`] itself; code handling
    /// untrusted lane counts (a serving front door) should use
    /// [`try_new`](Self::try_new).
    pub fn new(arc_count: usize, lanes: usize) -> Self {
        assert!(lanes <= LANES, "at most {LANES} lanes per batch");
        Self { planes: vec![0; arc_count], lanes }
    }

    /// Fallible [`new`](Self::new): rejects `lanes > LANES` with a typed
    /// error instead of panicking.
    ///
    /// # Errors
    /// [`GraphError::BatchShape`] if `lanes` exceeds [`LANES`].
    pub fn try_new(arc_count: usize, lanes: usize) -> Result<Self, GraphError> {
        if lanes > LANES {
            return Err(GraphError::BatchShape(format!(
                "{lanes} lanes exceed the {LANES} maximum"
            )));
        }
        Ok(Self { planes: vec![0; arc_count], lanes })
    }

    /// Clears and resizes this batch in place (buffer-reuse counterpart
    /// of [`new`](Self::new)).
    ///
    /// # Panics
    /// Invariant assert: panics if `lanes` exceeds [`LANES`] (see
    /// [`new`](Self::new); use [`try_reset`](Self::try_reset) on
    /// untrusted input).
    pub fn reset(&mut self, arc_count: usize, lanes: usize) {
        assert!(lanes <= LANES, "at most {LANES} lanes per batch");
        self.planes.clear();
        self.planes.resize(arc_count, 0);
        self.lanes = lanes;
    }

    /// Fallible [`reset`](Self::reset).
    ///
    /// # Errors
    /// [`GraphError::BatchShape`] if `lanes` exceeds [`LANES`]; the
    /// batch is left untouched on error.
    pub fn try_reset(&mut self, arc_count: usize, lanes: usize) -> Result<(), GraphError> {
        if lanes > LANES {
            return Err(GraphError::BatchShape(format!(
                "{lanes} lanes exceed the {LANES} maximum"
            )));
        }
        self.reset(arc_count, lanes);
        Ok(())
    }

    /// Number of arcs each lane covers.
    pub fn arc_count(&self) -> usize {
        self.planes.len()
    }

    /// Number of occupied lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Mask with one bit set per occupied lane.
    pub fn active_mask(&self) -> u64 {
        if self.lanes == LANES {
            !0
        } else {
            (1u64 << self.lanes) - 1
        }
    }

    /// The blocked-bitplane of `a`.
    pub fn plane(&self, a: ArcId) -> u64 {
        self.planes[a.index()]
    }

    /// Whether `a` is blocked in lane `lane`.
    pub fn is_blocked(&self, lane: usize, a: ArcId) -> bool {
        debug_assert!(lane < self.lanes);
        self.planes[a.index()] & (1u64 << lane) != 0
    }

    /// Sets the blocked status of `a` in lane `lane`.
    pub fn set_blocked(&mut self, lane: usize, a: ArcId, blocked: bool) {
        debug_assert!(lane < self.lanes);
        let bit = 1u64 << lane;
        if blocked {
            self.planes[a.index()] |= bit;
        } else {
            self.planes[a.index()] &= !bit;
        }
    }

    /// Copies a scalar context into lane `lane`.
    ///
    /// # Panics
    /// Invariant assert: panics if the context's arc count differs from
    /// the batch's — both must come from the same graph, which internal
    /// callers guarantee by construction. Use
    /// [`try_set_lane`](Self::try_set_lane) on untrusted input.
    pub fn set_lane(&mut self, lane: usize, ctx: &Context) {
        assert_eq!(ctx.arc_count(), self.planes.len(), "context/batch arc-count mismatch");
        debug_assert!(lane < self.lanes);
        let bit = 1u64 << lane;
        for (plane, &blocked) in self.planes.iter_mut().zip(&ctx.blocked) {
            if blocked {
                *plane |= bit;
            } else {
                *plane &= !bit;
            }
        }
    }

    /// Fallible [`set_lane`](Self::set_lane).
    ///
    /// # Errors
    /// [`GraphError::BatchShape`] if `lane` is not an occupied lane or
    /// the context's arc count differs from the batch's.
    pub fn try_set_lane(&mut self, lane: usize, ctx: &Context) -> Result<(), GraphError> {
        if lane >= self.lanes {
            return Err(GraphError::BatchShape(format!(
                "lane {lane} outside the {} occupied lanes",
                self.lanes
            )));
        }
        if ctx.arc_count() != self.planes.len() {
            return Err(GraphError::BatchShape(format!(
                "context covers {} arcs but the batch covers {}",
                ctx.arc_count(),
                self.planes.len()
            )));
        }
        self.set_lane(lane, ctx);
        Ok(())
    }

    /// Copies lane `lane` out into a scalar context (resizing it to fit).
    pub fn extract_lane(&self, lane: usize, out: &mut Context) {
        debug_assert!(lane < self.lanes);
        let bit = 1u64 << lane;
        out.blocked.clear();
        out.blocked.extend(self.planes.iter().map(|p| p & bit != 0));
    }
}

/// Result planes of one batched program execution: per-arc attempted /
/// traversed masks, per-lane cost accumulators, and terminal outcomes.
#[derive(Debug, Clone)]
pub struct BatchRun {
    attempted: Vec<u64>,
    traversed: Vec<u64>,
    cost: [f64; LANES],
    success_arc: [u32; LANES],
    succeeded: u64,
    active_in: u64,
}

impl BatchRun {
    /// An empty result buffer, reusable across executions.
    pub fn new() -> Self {
        Self {
            attempted: Vec::new(),
            traversed: Vec::new(),
            cost: [0.0; LANES],
            success_arc: [NO_INDEX; LANES],
            succeeded: 0,
            active_in: 0,
        }
    }

    fn begin(&mut self, arc_count: usize, active: u64) {
        self.attempted.clear();
        self.attempted.resize(arc_count, 0);
        self.traversed.clear();
        self.traversed.resize(arc_count, 0);
        self.cost = [0.0; LANES];
        self.success_arc = [NO_INDEX; LANES];
        self.succeeded = 0;
        self.active_in = active;
    }

    /// The lanes this run actually executed (input mask ∧ occupancy).
    pub fn active_in(&self) -> u64 {
        self.active_in
    }

    /// Mask of lanes whose run succeeded.
    pub fn succeeded_mask(&self) -> u64 {
        self.succeeded
    }

    /// Attempted-plane of `a` (bit `l` = lane `l` paid the arc's cost).
    pub fn attempted_plane(&self, a: ArcId) -> u64 {
        self.attempted[a.index()]
    }

    /// Traversed-plane of `a`.
    pub fn traversed_plane(&self, a: ArcId) -> u64 {
        self.traversed[a.index()]
    }

    /// Lane `lane`'s total run cost.
    pub fn cost(&self, lane: usize) -> f64 {
        self.cost[lane]
    }

    /// Lane `lane`'s terminal outcome.
    pub fn outcome(&self, lane: usize) -> RunOutcome {
        if self.succeeded & (1u64 << lane) != 0 {
            RunOutcome::Succeeded(ArcId(self.success_arc[lane]))
        } else {
            RunOutcome::Exhausted
        }
    }

    /// Reconstructs lane `lane`'s scalar event sequence (identical to
    /// what the scalar executor would have pushed) into `out`.
    pub fn events_into(
        &self,
        p: &StrategyProgram,
        lane: usize,
        out: &mut Vec<(ArcId, ArcOutcome)>,
    ) {
        out.clear();
        let bit = 1u64 << lane;
        for i in p.instrs() {
            let a = i.arc as usize;
            if self.attempted[a] & bit != 0 {
                let outcome = if self.traversed[a] & bit != 0 {
                    ArcOutcome::Traversed
                } else {
                    ArcOutcome::Blocked
                };
                out.push((ArcId(i.arc), outcome));
            }
        }
    }

    /// Whether lane `lane` attempted `a` during the run, and with what
    /// outcome — the plane-form, O(1) equivalent of a linear search over
    /// the lane's event list.
    pub fn outcome_in(&self, lane: usize, a: ArcId) -> Option<ArcOutcome> {
        let bit = 1u64 << lane;
        if self.attempted[a.index()] & bit == 0 {
            None
        } else if self.traversed[a.index()] & bit != 0 {
            Some(ArcOutcome::Traversed)
        } else {
            Some(ArcOutcome::Blocked)
        }
    }

    /// Writes the pessimistic completion (Section 5.2 / `delta_tilde`'s
    /// input) of every lane into `out` in plane form, matching
    /// [`crate::pessimistic_completion`] lane-for-lane: a retrieval is
    /// blocked unless observed traversed (`!traversed`), a reduction is
    /// open unless observed blocked (`attempted ∧ ¬traversed`). The
    /// formulas cover unattempted arcs automatically.
    pub fn completion_into(&self, g: &InferenceGraph, out: &mut ContextBatch) {
        assert_eq!(g.arc_count(), self.attempted.len(), "run/graph arc-count mismatch");
        out.reset(g.arc_count(), LANES);
        for a in g.arc_ids() {
            let i = a.index();
            out.planes[i] = match g.arc(a).kind {
                ArcKind::Retrieval => !self.traversed[i],
                ArcKind::Reduction => self.attempted[i] & !self.traversed[i],
            };
        }
    }
}

impl Default for BatchRun {
    fn default() -> Self {
        Self::new()
    }
}

/// Mask selecting lanes `from..lanes` — the shape of a mid-batch
/// restart, with already-drained lanes masked out.
///
/// # Panics
/// Debug-panics unless `from ≤ lanes ≤ 64`.
pub fn lanes_from(from: usize, lanes: usize) -> u64 {
    debug_assert!(from <= lanes && lanes <= LANES);
    let all = if lanes == LANES { !0u64 } else { (1u64 << lanes) - 1 };
    if from >= LANES {
        0
    } else {
        all & !((1u64 << from) - 1)
    }
}

/// Runs a compiled program over every lane of `batch` selected by
/// `active`, filling `run`. Returns the mask of lanes that succeeded.
///
/// Per-lane results are bit-identical to scalar
/// [`crate::program::execute_program_into`] runs on the extracted
/// contexts: each lane's cost adds the same instruction costs in the
/// same order (the outer loop is instruction order, matching the scalar
/// program counter), and the attempted/traversed planes encode the same
/// event sequences.
///
/// # Panics
/// Invariant assert: panics if `batch` was built for a different graph
/// than `p`. Both always derive from the same `InferenceGraph` in
/// internal callers; front doors validating untrusted shapes should use
/// [`try_execute_batch`].
pub fn execute_batch(
    p: &StrategyProgram,
    batch: &ContextBatch,
    active: u64,
    run: &mut BatchRun,
) -> u64 {
    assert_eq!(batch.arc_count(), p.arc_count(), "batch built for a different graph");
    run.begin(p.arc_count(), active & batch.active_mask());
    let mut alive = run.active_in;
    for i in p.instrs() {
        // Reach mask: lanes whose source node is reached. The root is
        // always reached; any other node is reached iff its unique
        // parent arc was traversed (tree invariant — same argument that
        // justifies scalar jump-threading). An untouched parent plane is
        // zero, which correctly reads as "not reached".
        let reach =
            if i.parent_arc == NO_INDEX { !0u64 } else { run.traversed[i.parent_arc as usize] };
        let attempt = alive & reach;
        if attempt == 0 {
            continue;
        }
        let trav = attempt & !batch.planes[i.arc as usize];
        run.attempted[i.arc as usize] = attempt;
        run.traversed[i.arc as usize] = trav;
        // Pay the arc cost per attempting lane. Scalar equivalence only
        // needs each lane's own *instruction* order to match, which the
        // outer loop guarantees — lanes are independent accumulators, so
        // the iteration scheme across lanes within one instruction is
        // free. Dense masks take a branch-free select the compiler can
        // vectorize: non-attempting lanes add +0.0, which is exact on
        // these accumulators (they start at +0.0 and finite-sum to -0.0
        // never), so per-lane bits are untouched. Sparse masks keep the
        // bit loop to avoid touching all 64 accumulators.
        if attempt.count_ones() >= 16 {
            let cost_bits = i.cost.to_bits();
            for (lane, c) in run.cost.iter_mut().enumerate() {
                let keep = ((attempt >> lane) & 1).wrapping_neg();
                *c += f64::from_bits(cost_bits & keep);
            }
        } else {
            let mut m = attempt;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                run.cost[lane] += i.cost;
                m &= m - 1;
            }
        }
        if i.success && trav != 0 {
            let mut s = trav;
            while s != 0 {
                let lane = s.trailing_zeros() as usize;
                run.success_arc[lane] = i.arc;
                s &= s - 1;
            }
            run.succeeded |= trav;
            alive &= !trav;
            if alive == 0 {
                break;
            }
        }
    }
    run.succeeded
}

/// Fallible [`execute_batch`]: validates the batch/program arc counts
/// instead of asserting.
///
/// # Errors
/// [`GraphError::BatchShape`] if `batch` was built for a different
/// graph than `p`; `run` is left in its previous state.
pub fn try_execute_batch(
    p: &StrategyProgram,
    batch: &ContextBatch,
    active: u64,
    run: &mut BatchRun,
) -> Result<u64, GraphError> {
    if batch.arc_count() != p.arc_count() {
        return Err(GraphError::BatchShape(format!(
            "batch covers {} arcs but the program covers {}",
            batch.arc_count(),
            p.arc_count()
        )));
    }
    Ok(execute_batch(p, batch, active, run))
}

/// [`execute_batch`] plus `graph.batch.*` telemetry: executions, lanes
/// run, lanes succeeded/exhausted.
pub fn execute_batch_observed(
    p: &StrategyProgram,
    batch: &ContextBatch,
    active: u64,
    run: &mut BatchRun,
    sink: &mut dyn qpl_obs::MetricsSink,
) -> u64 {
    let succeeded = execute_batch(p, batch, active, run);
    sink.counter("graph.batch.executions", 1);
    sink.counter("graph.batch.lanes", u64::from(run.active_in.count_ones()));
    sink.counter("graph.batch.succeeded", u64::from(succeeded.count_ones()));
    sink.counter(
        "graph.batch.exhausted",
        u64::from(run.active_in.count_ones() - succeeded.count_ones()),
    );
    succeeded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{execute_into, RunScratch};
    use crate::pessimistic::pessimistic_completion_into;
    use crate::program::{execute_program_into, StrategyProgram};
    use crate::strategy::Strategy;
    use crate::testgen::{lcg_context, lcg_strategy, lcg_tree};

    fn fill_batch(g: &InferenceGraph, seed: u64, lanes: usize) -> (ContextBatch, Vec<Context>) {
        let mut batch = ContextBatch::new(g.arc_count(), lanes);
        let mut ctxs = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let ctx = lcg_context(g, seed ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            batch.set_lane(lane, &ctx);
            ctxs.push(ctx);
        }
        (batch, ctxs)
    }

    #[test]
    fn fallible_variants_reject_bad_shapes_without_panicking() {
        let (g, _) = lcg_tree(4);
        assert!(ContextBatch::try_new(g.arc_count(), LANES + 1).is_err());
        let mut batch = ContextBatch::try_new(g.arc_count(), 8).unwrap();
        assert!(batch.try_reset(g.arc_count(), LANES + 3).is_err());
        assert_eq!(batch.lanes(), 8, "failed reset must leave the batch untouched");
        let ctx = lcg_context(&g, 1);
        assert!(batch.try_set_lane(9, &ctx).is_err(), "unoccupied lane");
        let (g2, _) = lcg_tree(900);
        assert_ne!(g2.arc_count(), g.arc_count(), "test needs distinct shapes");
        let foreign = Context::all_open(&g2);
        assert!(batch.try_set_lane(0, &foreign).is_err(), "foreign context");
        batch.try_set_lane(0, &ctx).unwrap();
        assert_eq!(batch.is_blocked(0, ArcId(0)), ctx.is_blocked(ArcId(0)));

        let s = Strategy::left_to_right(&g);
        let p = StrategyProgram::compile(&g, &s).unwrap();
        let mut run = BatchRun::new();
        let foreign_batch = ContextBatch::new(g2.arc_count(), 8);
        assert!(try_execute_batch(&p, &foreign_batch, !0, &mut run).is_err());
        let ok = try_execute_batch(&p, &batch, !0, &mut run).unwrap();
        let mut direct = BatchRun::new();
        assert_eq!(ok, execute_batch(&p, &batch, !0, &mut direct));
    }

    #[test]
    fn lanes_from_selects_the_undrained_suffix() {
        assert_eq!(lanes_from(0, 64), !0u64);
        assert_eq!(lanes_from(0, 5), 0b11111);
        assert_eq!(lanes_from(3, 5), 0b11000);
        assert_eq!(lanes_from(5, 5), 0);
        assert_eq!(lanes_from(64, 64), 0);
        assert_eq!(lanes_from(1, 64), !1u64);
    }

    #[test]
    fn lane_roundtrip_preserves_contexts() {
        let (g, _) = lcg_tree(7);
        let (batch, ctxs) = fill_batch(&g, 3, LANES);
        let mut out = Context::all_open(&g);
        for (lane, ctx) in ctxs.iter().enumerate() {
            batch.extract_lane(lane, &mut out);
            assert_eq!(&out, ctx, "lane {lane}");
            for a in g.arc_ids() {
                assert_eq!(batch.is_blocked(lane, a), ctx.is_blocked(a));
            }
        }
    }

    #[test]
    fn batch_matches_64_scalar_runs_lane_for_lane() {
        let mut events = Vec::new();
        for seed in 0..40u64 {
            let (g, _) = lcg_tree(seed);
            let s = lcg_strategy(&g, seed.wrapping_add(17));
            let p = StrategyProgram::compile(&g, &s).unwrap();
            let (batch, ctxs) = fill_batch(&g, seed, LANES);
            let mut run = BatchRun::new();
            execute_batch(&p, &batch, !0, &mut run);
            let mut scratch = RunScratch::new(&g);
            for (lane, ctx) in ctxs.iter().enumerate() {
                let scalar = execute_program_into(&p, ctx, &mut scratch);
                assert_eq!(run.outcome(lane), scalar, "seed {seed} lane {lane}");
                assert_eq!(
                    run.cost(lane).to_bits(),
                    scratch.cost().to_bits(),
                    "seed {seed} lane {lane}"
                );
                run.events_into(&p, lane, &mut events);
                assert_eq!(events.as_slice(), scratch.events(), "seed {seed} lane {lane}");
                for a in g.arc_ids() {
                    assert_eq!(
                        run.outcome_in(lane, a),
                        scratch.events().iter().find(|(x, _)| *x == a).map(|(_, o)| *o)
                    );
                }
            }
        }
    }

    #[test]
    fn batch_matches_interpreter_not_just_program() {
        // Closes the loop against the original interpreter, not only the
        // scalar program executor.
        for seed in 0..20u64 {
            let (g, _) = lcg_tree(seed);
            let s = lcg_strategy(&g, seed);
            let p = StrategyProgram::compile(&g, &s).unwrap();
            let (batch, ctxs) = fill_batch(&g, seed ^ 0xABCD, 64);
            let mut run = BatchRun::new();
            execute_batch(&p, &batch, !0, &mut run);
            let mut scratch = RunScratch::new(&g);
            for (lane, ctx) in ctxs.iter().enumerate() {
                let outcome = execute_into(&g, &s, ctx, &mut scratch);
                assert_eq!(run.outcome(lane), outcome);
                assert_eq!(run.cost(lane).to_bits(), scratch.cost().to_bits());
            }
        }
    }

    #[test]
    fn partial_batches_and_active_masks_respected() {
        let (g, _) = lcg_tree(11);
        let s = Strategy::left_to_right(&g);
        let p = StrategyProgram::compile(&g, &s).unwrap();
        let lanes = 23;
        let (batch, _) = fill_batch(&g, 5, lanes);
        assert_eq!(batch.active_mask(), (1u64 << lanes) - 1);
        let mut run = BatchRun::new();
        // Request more lanes than occupied: clipped to occupancy.
        execute_batch(&p, &batch, !0, &mut run);
        assert_eq!(run.active_in(), (1u64 << lanes) - 1);
        // Restrict to a sub-mask (mid-batch restart shape): masked-out
        // lanes stay untouched — zero cost, exhausted outcome.
        let sub = 0b1010_1010u64;
        let mut sub_run = BatchRun::new();
        execute_batch(&p, &batch, sub, &mut sub_run);
        assert_eq!(sub_run.active_in(), sub);
        for lane in 0..lanes {
            if sub & (1 << lane) != 0 {
                assert_eq!(sub_run.cost(lane).to_bits(), run.cost(lane).to_bits());
                assert_eq!(sub_run.outcome(lane), run.outcome(lane));
            } else {
                assert_eq!(sub_run.cost(lane), 0.0);
                assert_eq!(sub_run.outcome(lane), RunOutcome::Exhausted);
            }
        }
    }

    #[test]
    fn completion_matches_pessimistic_completion_per_lane() {
        let mut completed = ContextBatch::new(0, 0);
        for seed in 0..30u64 {
            let (g, _) = lcg_tree(seed);
            let s = lcg_strategy(&g, seed ^ 0xF00D);
            let p = StrategyProgram::compile(&g, &s).unwrap();
            let (batch, ctxs) = fill_batch(&g, seed, 64);
            let mut run = BatchRun::new();
            execute_batch(&p, &batch, !0, &mut run);
            run.completion_into(&g, &mut completed);
            let mut scratch = RunScratch::new(&g);
            let mut scalar_completed = Context::all_open(&g);
            let mut lane_completed = Context::all_open(&g);
            for (lane, ctx) in ctxs.iter().enumerate() {
                execute_into(&g, &s, ctx, &mut scratch);
                pessimistic_completion_into(&g, scratch.events(), &mut scalar_completed);
                completed.extract_lane(lane, &mut lane_completed);
                assert_eq!(lane_completed, scalar_completed, "seed {seed} lane {lane}");
            }
        }
    }

    #[test]
    fn observed_variant_emits_batch_counters() {
        let (g, _) = lcg_tree(2);
        let s = Strategy::left_to_right(&g);
        let p = StrategyProgram::compile(&g, &s).unwrap();
        let (batch, _) = fill_batch(&g, 9, 64);
        let mut run = BatchRun::new();
        let mut sink = qpl_obs::MemorySink::new();
        let succeeded = execute_batch_observed(&p, &batch, !0, &mut run, &mut sink);
        assert_eq!(sink.counter_total("graph.batch.executions"), 1);
        assert_eq!(sink.counter_total("graph.batch.lanes"), 64);
        assert_eq!(sink.counter_total("graph.batch.succeeded"), u64::from(succeeded.count_ones()));
        assert_eq!(
            sink.counter_total("graph.batch.succeeded")
                + sink.counter_total("graph.batch.exhausted"),
            64
        );
    }

    proptest::proptest! {
        /// 64-lane batch execution is bit-identical to 64 scalar runs on
        /// random trees × strategies × contexts × active masks.
        #[test]
        fn batch_bitwise_matches_scalar(
            seed in 0u64..2_000,
            strat_seed in 0u64..64,
            ctx_seed in 0u64..1_000,
            active in 0u64..=u64::MAX,
        ) {
            let (g, _) = lcg_tree(seed);
            let s = lcg_strategy(&g, strat_seed);
            let p = StrategyProgram::compile(&g, &s).unwrap();
            let (batch, ctxs) = fill_batch(&g, ctx_seed, LANES);
            let mut run = BatchRun::new();
            execute_batch(&p, &batch, active, &mut run);
            let mut scratch = RunScratch::new(&g);
            let mut events = Vec::new();
            for (lane, ctx) in ctxs.iter().enumerate() {
                if active & (1 << lane) == 0 {
                    proptest::prop_assert_eq!(run.cost(lane), 0.0);
                    continue;
                }
                let scalar = execute_program_into(&p, ctx, &mut scratch);
                proptest::prop_assert_eq!(run.outcome(lane), scalar);
                proptest::prop_assert_eq!(run.cost(lane).to_bits(), scratch.cost().to_bits());
                run.events_into(&p, lane, &mut events);
                proptest::prop_assert_eq!(events.as_slice(), scratch.events());
            }
        }
    }
}
