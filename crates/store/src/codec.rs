//! Byte-level encoding primitives shared by the WAL and the snapshot.
//!
//! Everything on disk is little-endian. Floats are stored as their IEEE
//! bit patterns ([`f64::to_bits`]) so recovery reproduces accumulator
//! state *bit-identically* — the Chernoff bookkeeping must not drift
//! through a decimal round-trip. Strings are length-prefixed UTF-8.
//! Decoding is bounds-checked and returns typed errors instead of
//! panicking: the decoder's inputs are disk bytes that a crash may have
//! torn anywhere.

use std::fmt;

/// A decode failure: the byte stream ended early or held an invalid
/// value. For WAL frames this marks the end of the valid prefix; for
/// snapshots it invalidates the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Stores the IEEE-754 bit pattern; `Dec::take_f64` restores the
    /// identical bits.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked cursor over a byte slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError(format!(
                "need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    pub fn take_str(&mut self) -> Result<String, CodecError> {
        let len = self.take_u32()? as usize;
        // A corrupt length would otherwise request gigabytes; the bounds
        // check in `take` rejects anything past the end of the buffer.
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError(format!("invalid UTF-8 in string at offset {}", self.pos)))
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3 polynomial, the zlib/`cksum -o 3` variant),
/// table-driven. Guards every WAL frame and the snapshot payload.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn round_trips_every_primitive() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX - 3);
        e.put_f64(-0.1f64);
        e.put_f64(f64::NAN);
        e.put_str("edge(a, b)");
        e.put_str("");
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 7);
        assert_eq!(d.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.take_f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(d.take_f64().unwrap().is_nan());
        assert_eq!(d.take_str().unwrap(), "edge(a, b)");
        assert_eq!(d.take_str().unwrap(), "");
        assert!(d.is_empty());
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut e = Enc::new();
        e.put_str("edge(a, b)");
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(d.take_str().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupt_length_prefix_is_rejected() {
        let mut e = Enc::new();
        e.put_u32(u32::MAX); // claims a 4 GiB string
        let bytes = e.into_bytes();
        assert!(Dec::new(&bytes).take_str().is_err());
    }
}
