//! Negation as failure (Section 5.2).
//!
//! "Consider the rule `pauper(X) :- ¬owns(X, Y).` and observe that we can
//! determine whether some individual is, or is not, a pauper by finding a
//! *single* item that he owns; n.b., we do not have to find each of his
//! multitude of possessions."
//!
//! A negated query is therefore *exactly* a satisficing search on the
//! positive sub-goal — the answer is inverted, but the cost profile (and
//! hence everything PIB/PAO learn) is identical. [`NafProcessor`] wraps a
//! positive [`QueryProcessor`] accordingly.

use qpl_datalog::{Atom, Database};
use qpl_graph::context::Trace;
use qpl_graph::strategy::Strategy;
use qpl_graph::GraphError;

use crate::qp::{QueryAnswer, QueryProcessor};

/// Result of a negation-as-failure query.
#[derive(Debug, Clone, PartialEq)]
pub struct NafRun {
    /// Whether the *negated* goal holds (i.e. the positive search failed).
    pub holds: bool,
    /// If the positive goal succeeded, its witness (the disqualifying
    /// fact — e.g. the one item the non-pauper owns).
    pub counterexample: Option<Atom>,
    /// The positive search's trace (costs are identical either way).
    pub trace: Trace,
}

/// Answers `¬goal` by satisficing search on `goal`.
#[derive(Debug, Clone)]
pub struct NafProcessor<'g> {
    inner: QueryProcessor<'g>,
}

impl<'g> NafProcessor<'g> {
    /// Wraps a positive-goal processor.
    pub fn new(inner: QueryProcessor<'g>) -> Self {
        Self { inner }
    }

    /// The positive-goal processor (strategy updates go through here).
    pub fn inner(&self) -> &QueryProcessor<'g> {
        &self.inner
    }

    /// Replaces the search strategy.
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.inner.set_strategy(strategy);
    }

    /// Evaluates `¬query` against `db`.
    ///
    /// # Errors
    /// Any error from the positive query (form mismatch).
    pub fn run(&self, query: &Atom, db: &Database) -> Result<NafRun, GraphError> {
        let run = self.inner.run(query, db)?;
        let (holds, counterexample) = match run.answer {
            QueryAnswer::Yes(witness) => (false, Some(witness)),
            QueryAnswer::No => (true, None),
        };
        Ok(NafRun { holds, counterexample, trace: run.trace })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_datalog::parser::{parse_program, parse_query, parse_query_form};
    use qpl_datalog::SymbolTable;
    use qpl_graph::compile::{compile, CompileOptions};

    /// The pauper knowledge base: ownership is scattered across several
    /// asset classes, each its own retrieval.
    const PAUPER_KB: &str = "owns(X, Y) :- owns_home(X, Y).\n\
                             owns(X, Y) :- owns_car(X, Y).\n\
                             owns(X, Y) :- owns_stock(X, Y).\n\
                             owns_car(midas, chariot).\n\
                             owns_stock(midas, goldco).\n\
                             owns_home(croesus, palace).";

    fn setup() -> (SymbolTable, qpl_graph::compile::CompiledGraph, Database) {
        let mut t = SymbolTable::new();
        let p = parse_program(PAUPER_KB, &mut t).unwrap();
        let qf = parse_query_form("owns(b,f)", &mut t).unwrap();
        let cg = compile(&p.rules, &qf, &t, &CompileOptions::default()).unwrap();
        (t, cg, p.facts)
    }

    #[test]
    fn pauper_decided_by_single_possession() {
        let (mut t, cg, db) = setup();
        let naf = NafProcessor::new(QueryProcessor::left_to_right(&cg));
        // midas owns things → not a pauper; one possession suffices.
        let run = naf.run(&parse_query("owns(midas, Y)", &mut t).unwrap(), &db).unwrap();
        assert!(!run.holds);
        let witness = run.counterexample.unwrap();
        assert!(witness.display(&t).to_string().contains("midas"));
    }

    #[test]
    fn true_pauper_searches_everything() {
        let (mut t, cg, db) = setup();
        let naf = NafProcessor::new(QueryProcessor::left_to_right(&cg));
        let run = naf.run(&parse_query("owns(diogenes, Y)", &mut t).unwrap(), &db).unwrap();
        assert!(run.holds, "no possessions found → pauper");
        assert!(run.counterexample.is_none());
        // Exhaustive search: all six arcs attempted.
        assert_eq!(run.trace.cost, 6.0);
    }

    #[test]
    fn strategy_order_changes_non_pauper_cost() {
        let (mut t, cg, db) = setup();
        let g = &cg.graph;
        let q = parse_query("owns(midas, Y)", &mut t).unwrap();
        // Home-first pays for the failed home lookup before finding the
        // car; car-first finds it immediately.
        let home_first = NafProcessor::new(QueryProcessor::left_to_right(&cg));
        let cost_home_first = home_first.run(&q, &db).unwrap().trace.cost;
        let mut orders: Vec<Vec<qpl_graph::ArcId>> =
            g.node_ids().map(|n| g.children(n).to_vec()).collect();
        orders[g.root().index()].swap(0, 1); // car rule first
        let mut car_first = NafProcessor::new(QueryProcessor::left_to_right(&cg));
        car_first.set_strategy(Strategy::dfs_from_orders(g, &orders).unwrap());
        let cost_car_first = car_first.run(&q, &db).unwrap().trace.cost;
        assert!(cost_car_first < cost_home_first, "{cost_car_first} < {cost_home_first}");
    }

    #[test]
    fn costs_match_positive_query() {
        // The NAF wrapper adds no cost: it is the same satisficing search.
        let (mut t, cg, db) = setup();
        let q = parse_query("owns(croesus, Y)", &mut t).unwrap();
        let qp = QueryProcessor::left_to_right(&cg);
        let naf = NafProcessor::new(qp.clone());
        let pos = qp.run(&q, &db).unwrap();
        let neg = naf.run(&q, &db).unwrap();
        assert_eq!(pos.trace.cost, neg.trace.cost);
        assert_eq!(pos.answer.is_yes(), !neg.holds);
    }
}
