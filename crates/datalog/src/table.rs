//! SLG-style answer tables for top-down evaluation.
//!
//! The satisficing SLD solver of [`topdown`](crate::topdown) re-proves a
//! subgoal every time it appears, which is exponential for shared
//! subgoals and non-terminating (up to the depth bound) for recursive
//! rule bases. Tabling fixes both: every *call pattern* — a predicate
//! with an adornment over its arguments (Section 2's `q^α`) plus the
//! constants at its bound positions — gets one [`TableStore`] entry whose
//! answer set is computed exactly once and reused by every later
//! occurrence, within one proof and across proofs that share a database.
//!
//! Two subgoals share a table iff they are variants of each other:
//! `path(a, X)` and `path(a, Y)` canonicalize to the same [`CallKey`]
//! (`path`, `⟨b:a, f₀⟩`), while `path(a, X)` / `path(b, X)` /
//! `path(X, X)` are three distinct keys. Answers are stored as constant
//! tuples over the key's canonical free variables, in first-derivation
//! order, so consumption is deterministic.
//!
//! The store itself is a passive memo structure; the producer/consumer
//! fixpoint logic lives in [`topdown`](crate::topdown). Cross-context
//! reuse (sharing a store across many queries against the same database)
//! is layered on top in `qpl-engine`, keyed by the database's generation
//! counter.

use crate::adornment::{Adornment, Binding};
use crate::symbol::Symbol;
use crate::term::{Atom, Term, Var};
use crate::unify::Substitution;
use std::collections::{HashMap, HashSet};

/// One argument position of a canonical call pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallArg {
    /// Bound position: the call supplies this constant.
    Bound(Symbol),
    /// Free position: the `i`-th canonical variable of the call, numbered
    /// by first occurrence (repeated variables repeat the index).
    Free(u16),
}

/// An adorned call pattern — the table key.
///
/// # Examples
/// ```
/// use qpl_datalog::table::CallKey;
/// use qpl_datalog::{Atom, Substitution, SymbolTable, Term, Var};
/// let mut t = SymbolTable::new();
/// let (path, a) = (t.intern("path"), t.intern("a"));
/// let goal = Atom::new(path, vec![Term::Const(a), Term::Var(Var(7))]);
/// let (key, vars) = CallKey::of(&goal, &Substitution::new());
/// assert_eq!(key.adornment().to_string(), "bf");
/// assert_eq!(vars, vec![Var(7)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CallKey {
    /// Called predicate.
    pub predicate: Symbol,
    /// Canonicalized arguments.
    pub args: Vec<CallArg>,
}

impl CallKey {
    /// Canonicalizes `goal` as it stands under `sub`: arguments resolving
    /// to constants become [`CallArg::Bound`], unbound variables are
    /// numbered by first occurrence. Also returns the original variable
    /// behind each canonical index, for binding answers back into the
    /// caller's namespace.
    pub fn of(goal: &Atom, sub: &Substitution) -> (Self, Vec<Var>) {
        let mut vars: Vec<Var> = Vec::new();
        let args = goal
            .args
            .iter()
            .map(|&t| match sub.resolve(t) {
                Term::Const(c) => CallArg::Bound(c),
                Term::Var(v) => {
                    let idx = vars.iter().position(|&w| w == v).unwrap_or_else(|| {
                        vars.push(v);
                        vars.len() - 1
                    });
                    CallArg::Free(u16::try_from(idx).expect("more than 65535 call variables"))
                }
            })
            .collect();
        (Self { predicate: goal.predicate, args }, vars)
    }

    /// The bound/free adornment of this call (the paper's `α`).
    pub fn adornment(&self) -> Adornment {
        self.args
            .iter()
            .map(|a| match a {
                CallArg::Bound(_) => Binding::Bound,
                CallArg::Free(_) => Binding::Free,
            })
            .collect()
    }

    /// Number of *distinct* canonical variables (the answer tuple width).
    pub fn free_count(&self) -> usize {
        self.args
            .iter()
            .filter_map(|a| match a {
                CallArg::Free(i) => Some(*i as usize + 1),
                CallArg::Bound(_) => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// The canonical call atom: `Var(i)` at free positions, constants at
    /// bound ones. Producer evaluation resolves against this atom.
    pub fn to_atom(&self) -> Atom {
        Atom::new(
            self.predicate,
            self.args
                .iter()
                .map(|a| match a {
                    CallArg::Bound(c) => Term::Const(*c),
                    CallArg::Free(i) => Term::Var(Var(u32::from(*i))),
                })
                .collect(),
        )
    }
}

/// Identifier of a table within its [`TableStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub u32);

impl TableId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One call pattern's answers.
#[derive(Debug, Clone)]
struct Table {
    key: CallKey,
    /// Answer tuples over the key's canonical variables, in derivation
    /// order (deterministic: evaluation order is a pure function of the
    /// rule base and database).
    answers: Vec<Box<[Symbol]>>,
    seen: HashSet<Box<[Symbol]>>,
    complete: bool,
}

/// Cumulative memoization counters for a store's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Calls answered by an existing table (complete or in progress).
    pub hits: u64,
    /// Calls that created and evaluated a fresh table.
    pub misses: u64,
    /// Answer tuples consumed from tables that were already complete when
    /// read — derivation work the memo saved outright.
    pub answers_reused: u64,
}

/// The answer-table store: adorned call pattern → memoized answer set.
///
/// Reusing one store across queries amortizes proof work whenever the
/// underlying database is unchanged; callers are responsible for
/// [`clear`](Self::clear)-ing (or dropping) the store when the database
/// mutates — `qpl-engine::cache` automates that with the database's
/// generation counter.
#[derive(Debug, Clone, Default)]
pub struct TableStore {
    index: HashMap<CallKey, TableId>,
    tables: Vec<Table>,
    stats: TableStats,
}

impl TableStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tables (distinct call patterns seen).
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether no call has been tabled yet.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total answers across all tables.
    pub fn total_answers(&self) -> usize {
        self.tables.iter().map(|t| t.answers.len()).sum()
    }

    /// Lifetime memoization counters.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Drops every table (the stats survive — they describe the store's
    /// lifetime, not its contents).
    pub fn clear(&mut self) {
        self.index.clear();
        self.tables.clear();
    }

    /// Looks up the table for `key`, counting a hit if present.
    pub fn lookup(&mut self, key: &CallKey) -> Option<TableId> {
        let id = self.index.get(key).copied();
        if id.is_some() {
            self.stats.hits += 1;
        }
        id
    }

    /// Creates a fresh (incomplete, empty) table for `key`, counting a
    /// miss. The caller must eventually [`set_complete`](Self::set_complete).
    pub fn create(&mut self, key: CallKey) -> TableId {
        debug_assert!(!self.index.contains_key(&key), "create after failed lookup only");
        let id = TableId(u32::try_from(self.tables.len()).expect("table store overflow"));
        self.index.insert(key.clone(), id);
        self.tables.push(Table { key, answers: Vec::new(), seen: HashSet::new(), complete: false });
        self.stats.misses += 1;
        id
    }

    /// The call pattern `t` was created for.
    pub fn key(&self, t: TableId) -> &CallKey {
        &self.tables[t.index()].key
    }

    /// Whether `t`'s answer set is known to be complete.
    pub fn is_complete(&self, t: TableId) -> bool {
        self.tables[t.index()].complete
    }

    /// Marks `t` complete (its fixpoint has saturated).
    pub fn set_complete(&mut self, t: TableId) {
        self.tables[t.index()].complete = true;
    }

    /// Number of answers currently in `t`.
    pub fn answer_count(&self, t: TableId) -> usize {
        self.tables[t.index()].answers.len()
    }

    /// The `i`-th answer of `t` (derivation order).
    pub fn answer(&self, t: TableId, i: usize) -> &[Symbol] {
        &self.tables[t.index()].answers[i]
    }

    /// Inserts an answer tuple; returns `true` if it was new.
    pub fn insert_answer(&mut self, t: TableId, tuple: Box<[Symbol]>) -> bool {
        let table = &mut self.tables[t.index()];
        debug_assert!(!table.complete, "inserting into a completed table");
        if table.seen.contains(&tuple) {
            return false;
        }
        table.seen.insert(tuple.clone());
        table.answers.push(tuple);
        true
    }

    /// Records `n` answers consumed from an already-complete table.
    pub fn note_reuse(&mut self, n: u64) {
        self.stats.answers_reused += n;
    }

    /// All tables, as `(id, key, complete)` rows (for maintenance scans).
    pub fn iter_keys(&self) -> impl Iterator<Item = (TableId, &CallKey, bool)> {
        self.tables.iter().enumerate().map(|(i, t)| (TableId(i as u32), &t.key, t.complete))
    }

    /// Drops every table whose key fails `keep`, compacting the surviving
    /// tables onto fresh [`TableId`]s; returns how many were dropped.
    ///
    /// Ids are only stable *within* one solve (the evaluator holds them
    /// on its stack); between solves nothing retains a `TableId`, so
    /// maintenance passes may renumber freely.
    pub fn retain_tables(&mut self, mut keep: impl FnMut(&CallKey) -> bool) -> usize {
        let before = self.tables.len();
        self.tables.retain(|t| keep(&t.key));
        self.index.clear();
        for (i, t) in self.tables.iter().enumerate() {
            self.index.insert(t.key.clone(), TableId(i as u32));
        }
        before - self.tables.len()
    }

    /// Reopens a completed table for incremental re-derivation: existing
    /// answers (and the dedup set) survive, so a subsequent fixpoint pass
    /// appends only genuinely new answers.
    pub fn reopen(&mut self, t: TableId) {
        self.tables[t.index()].complete = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn syms() -> (SymbolTable, Symbol, Symbol, Symbol) {
        let mut t = SymbolTable::new();
        let p = t.intern("path");
        let a = t.intern("a");
        let b = t.intern("b");
        (t, p, a, b)
    }

    #[test]
    fn variant_calls_share_a_key() {
        let (_, p, a, _) = syms();
        let g1 = Atom::new(p, vec![Term::Const(a), Term::Var(Var(3))]);
        let g2 = Atom::new(p, vec![Term::Const(a), Term::Var(Var(9))]);
        let (k1, v1) = CallKey::of(&g1, &Substitution::new());
        let (k2, v2) = CallKey::of(&g2, &Substitution::new());
        assert_eq!(k1, k2);
        assert_eq!(v1, vec![Var(3)]);
        assert_eq!(v2, vec![Var(9)]);
    }

    #[test]
    fn repeated_variables_distinguish_keys() {
        let (_, p, _, _) = syms();
        let same = Atom::new(p, vec![Term::Var(Var(0)), Term::Var(Var(0))]);
        let diff = Atom::new(p, vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        let (ks, vs) = CallKey::of(&same, &Substitution::new());
        let (kd, vd) = CallKey::of(&diff, &Substitution::new());
        assert_ne!(ks, kd);
        assert_eq!(ks.free_count(), 1);
        assert_eq!(kd.free_count(), 2);
        assert_eq!(vs, vec![Var(0)]);
        assert_eq!(vd, vec![Var(0), Var(1)]);
    }

    #[test]
    fn canonicalization_respects_substitution() {
        let (_, p, a, _) = syms();
        let goal = Atom::new(p, vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        let mut sub = Substitution::new();
        sub.bind(Var(0), Term::Const(a));
        let (key, vars) = CallKey::of(&goal, &sub);
        assert_eq!(key.args, vec![CallArg::Bound(a), CallArg::Free(0)]);
        assert_eq!(vars, vec![Var(1)]);
        assert_eq!(key.adornment().to_string(), "bf");
    }

    #[test]
    fn to_atom_round_trips() {
        let (_, p, a, _) = syms();
        let goal = Atom::new(p, vec![Term::Const(a), Term::Var(Var(5)), Term::Var(Var(5))]);
        let (key, _) = CallKey::of(&goal, &Substitution::new());
        let atom = key.to_atom();
        assert_eq!(atom.args, vec![Term::Const(a), Term::Var(Var(0)), Term::Var(Var(0))]);
        let (key2, _) = CallKey::of(&atom, &Substitution::new());
        assert_eq!(key, key2);
    }

    #[test]
    fn store_hits_misses_and_answers() {
        let (_, p, a, b) = syms();
        let goal = Atom::new(p, vec![Term::Var(Var(0))]);
        let (key, _) = CallKey::of(&goal, &Substitution::new());
        let mut store = TableStore::new();
        assert_eq!(store.lookup(&key), None);
        let t = store.create(key.clone());
        assert!(store.insert_answer(t, vec![a].into_boxed_slice()));
        assert!(!store.insert_answer(t, vec![a].into_boxed_slice()), "duplicate answer");
        assert!(store.insert_answer(t, vec![b].into_boxed_slice()));
        assert_eq!(store.answer_count(t), 2);
        assert_eq!(store.answer(t, 0), &[a]);
        assert!(!store.is_complete(t));
        store.set_complete(t);
        assert!(store.is_complete(t));
        assert_eq!(store.lookup(&key), Some(t));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(store.total_answers(), 2);
    }

    #[test]
    fn clear_keeps_lifetime_stats() {
        let (_, p, _, _) = syms();
        let (key, _) = CallKey::of(&Atom::new(p, vec![]), &Substitution::new());
        let mut store = TableStore::new();
        store.create(key);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn retain_tables_compacts_ids_and_reports_drops() {
        let (mut t, p, a, b) = syms();
        let q = t.intern("q");
        let mut store = TableStore::new();
        let (kp, _) = CallKey::of(&Atom::new(p, vec![Term::Var(Var(0))]), &Substitution::new());
        let (kq, _) = CallKey::of(&Atom::new(q, vec![Term::Var(Var(0))]), &Substitution::new());
        let tp = store.create(kp.clone());
        store.insert_answer(tp, vec![a].into_boxed_slice());
        store.set_complete(tp);
        let tq = store.create(kq.clone());
        store.insert_answer(tq, vec![b].into_boxed_slice());
        store.set_complete(tq);
        let dropped = store.retain_tables(|k| k.predicate != p);
        assert_eq!(dropped, 1);
        assert_eq!(store.len(), 1);
        let survivor = store.lookup(&kq).expect("q's table survives");
        assert_eq!(store.answer(survivor, 0), &[b]);
        assert_eq!(store.lookup(&kp), None, "p's table is gone");
    }

    #[test]
    fn reopen_keeps_answers_and_dedup() {
        let (_, p, a, b) = syms();
        let (key, _) = CallKey::of(&Atom::new(p, vec![Term::Var(Var(0))]), &Substitution::new());
        let mut store = TableStore::new();
        let t = store.create(key);
        store.insert_answer(t, vec![a].into_boxed_slice());
        store.set_complete(t);
        store.reopen(t);
        assert!(!store.is_complete(t));
        assert!(!store.insert_answer(t, vec![a].into_boxed_slice()), "dedup survives reopen");
        assert!(store.insert_answer(t, vec![b].into_boxed_slice()));
        store.set_complete(t);
        assert_eq!(store.answer_count(t), 2);
    }

    #[test]
    fn zero_arity_call() {
        let (mut t, _, _, _) = syms();
        let halt = t.intern("halt");
        let (key, vars) = CallKey::of(&Atom::new(halt, vec![]), &Substitution::new());
        assert_eq!(key.free_count(), 0);
        assert!(vars.is_empty());
        assert!(key.adornment().is_all_bound());
    }
}
