//! Dumps one schema-stable JSON metrics snapshot for an E18-style run:
//! a tabled + cross-context-cached sample stream, a PIB learning loop,
//! a binding-aware planning pass (greedy ordering + magic rewriting),
//! and a PAO sampling plan, all observed through a single
//! [`MemorySink`](qpl_obs::MemorySink).
//!
//! ```text
//! qpl-report [--seed N] [--out metrics.json]
//! ```
//!
//! Without `--out` the snapshot goes to stdout. The snapshot's top-level
//! keys (`schema_version`, `counters`, `values`, `spans`, `events`,
//! `dropped_events`) are stable across runs; see DESIGN.md's
//! observability section for the metric namespaces inside them.

use qpl_core::pao::{Pao, PaoConfig};
use qpl_core::pib::{Pib, PibConfig};
use qpl_core::GreedyHeuristic;
use qpl_datalog::parser::{parse_program, parse_query_form};
use qpl_datalog::topdown::RetrievalStats;
use qpl_datalog::{eval, Adornment, QueryForm, SymbolTable, TopDown};
use qpl_engine::cache::CrossContextCache;
use qpl_engine::par::sample_rng;
use qpl_engine::MagicRunner;
use qpl_graph::compile::{compile, CompileOptions};
use qpl_graph::expected::{ContextDistribution, IndependentModel};
use qpl_graph::graph::{GraphBuilder, InferenceGraph};
use qpl_graph::strategy::Strategy;
use qpl_obs::{JsonSnapshot, MemorySink, MetricsSink, SpanTimer};
use qpl_workload::generator::{
    emit_kb_provenance, recursive_path_kb, source_reachability_query, RecursiveKbParams,
};
use qpl_workload::paper::UNIVERSITY_KB;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's Figure-1 graph `G_A` (instructor = prof ∨ grad).
fn g_a() -> InferenceGraph {
    let mut b = GraphBuilder::new("instructor(κ)");
    let root = b.root();
    let (_, prof) = b.reduction(root, "R_p", 1.0, "prof(κ)");
    b.retrieval(prof, "D_p", 1.0);
    let (_, grad) = b.reduction(root, "R_g", 1.0, "grad(κ)");
    b.retrieval(grad, "D_g", 1.0);
    b.finish().expect("G_A is valid")
}

/// E18 in miniature: a few context classes over the layered-DAG
/// reachability KB, answered with warm cross-context tables. Serial on
/// purpose — cache hit/miss splits are deterministic only in arrival
/// order (see `CrossContextCache::emit_to`).
fn tabling_phase(seed: u64, sink: &mut MemorySink) {
    let timer = SpanTimer::start(sink, "report.phase.tabling");
    let params = RecursiveKbParams { layers: 7, width: 2 };
    let n_classes = 3usize;
    let n_samples = 48usize;
    let classes: Vec<_> = (0..n_classes)
        .map(|k| {
            let mut mask_rng = sample_rng(seed, k as u64);
            recursive_path_kb(&params, |_, _, _| k == 0 || mask_rng.gen::<f64>() >= 0.15)
        })
        .collect();
    let (table0, rules0, db0, _) = &classes[0];
    emit_kb_provenance(table0, rules0, db0, sink);

    let mut cache = CrossContextCache::new();
    let mut stats = RetrievalStats::default();
    for i in 0..n_samples {
        let k = sample_rng(seed ^ 0x5eed, i as u64).gen_range(0..n_classes);
        let (_, rules, db, sink_query) = &classes[k];
        let solver = TopDown::new(rules, db);
        let store = cache.tables_for(db, k as u64);
        assert!(
            solver.solve_tabled_in(sink_query, store, &mut stats).unwrap().is_none(),
            "sink is unreachable by construction"
        );
    }
    stats.emit_to(sink);
    cache.emit_to(sink);
    sink.counter("report.tabling.samples", n_samples as u64);
    timer.finish(sink);
}

/// A PIB hill-climb on `G_A` under a grad-heavy mix: the learner must
/// accept the root swap, producing `core.pib.candidate` accept events
/// with their Δ̃ sums and Chernoff thresholds.
fn learning_phase(seed: u64, sink: &mut MemorySink) {
    let timer = SpanTimer::start(sink, "report.phase.learning");
    let g = g_a();
    let model =
        IndependentModel::from_retrieval_probs(&g, &[0.05, 0.8]).expect("probabilities are valid");
    let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.05));
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..1500 {
        pib.observe_with(&g, &model.sample(&mut rng), sink);
    }
    assert!(!pib.history().is_empty(), "grad-heavy mix must trigger a climb");
    timer.finish(sink);
}

/// Binding-aware planning: a greedy statistics-free plan over the
/// Figure-1 program (`plan.greedy.micros`), a magic rewrite of the
/// reachability KB answered through [`MagicRunner`]
/// (`plan.magic.rules_generated`, `engine.magic.*`), and the pruning it
/// bought over full saturation (`eval.magic.facts_pruned`).
fn planning_phase(sink: &mut MemorySink) {
    let timer = SpanTimer::start(sink, "report.phase.planning");
    let mut table = SymbolTable::new();
    let program = parse_program(UNIVERSITY_KB, &mut table).expect("paper KB parses");
    let form = parse_query_form("instructor(b)", &mut table).expect("form parses");
    let compiled = compile(&program.rules, &form, &table, &CompileOptions::default())
        .expect("paper KB compiles");
    GreedyHeuristic::strategy_observed(&compiled, sink).expect("tree graph");

    let params = RecursiveKbParams { layers: 7, width: 3 };
    let (mut table, rules, db, _) =
        recursive_path_kb(&params, |_, i, j| i == j || (i > 0 && j > 0));
    let query = source_reachability_query(&mut table);
    let form = QueryForm { predicate: query.predicate, adornment: Adornment::of_atom(&query) };
    let mut runner = MagicRunner::new(&rules, &form, &mut table);
    let cold = runner.run_magic(&db, &query);
    assert!(runner.run_magic(&db, &query).cache_hit);
    runner.emit_to(sink);
    let full_derived = eval::seminaive(&rules, &db).len() - db.len();
    sink.counter(
        qpl_obs::names::eval::MAGIC_FACTS_PRUNED,
        (full_derived.saturating_sub(cold.derived)) as u64,
    );
    timer.finish(sink);
}

/// A PAO sampling plan on `G_A`: Equation 7 trial counts per retrieval
/// (capped for runtime), driven to completion through `QP^A`.
fn pao_phase(seed: u64, sink: &mut MemorySink) {
    let timer = SpanTimer::start(sink, "report.phase.pao");
    let g = g_a();
    let config = PaoConfig::theorem2(1.0, 0.1).with_sample_cap(64);
    let mut pao = Pao::new(&g, config).expect("G_A is a tree");
    let model =
        IndependentModel::from_retrieval_probs(&g, &[0.3, 0.6]).expect("probabilities are valid");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9a0);
    while !pao.done() {
        pao.observe(&g, &model.sample(&mut rng));
    }
    pao.emit_to(sink);
    pao.finish(&g).expect("sampling is complete");
    timer.finish(sink);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag =
        |name: &str| args.iter().position(|a| a == name).and_then(|p| args.get(p + 1)).cloned();
    let seed: u64 = flag("--seed").map_or(1818, |s| s.parse().expect("--seed takes a u64"));
    let out = flag("--out");

    let mut sink = MemorySink::new();
    tabling_phase(seed, &mut sink);
    learning_phase(seed, &mut sink);
    planning_phase(&mut sink);
    pao_phase(seed, &mut sink);

    let snapshot = JsonSnapshot::capture(&sink);
    match out {
        Some(path) => {
            std::fs::write(&path, snapshot.as_str()).expect("write snapshot");
            eprintln!("wrote {path}");
        }
        None => println!("{}", snapshot.as_str()),
    }
}
