//! Offline vendored shim of the `criterion 0.5` API surface this workspace
//! uses. Measurement model: calibrate an iteration count to a target sample
//! time, take `sample_size` samples, report the median ns/iter.
//!
//! Behavior matches upstream's harness contract: when the binary is run
//! without `--bench` (e.g. by `cargo test`, which executes `harness = false`
//! bench targets directly), every benchmark body runs exactly once in "test
//! mode" so the suite stays fast and benches are still smoke-tested.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target accumulated measurement time per benchmark.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(8);
/// Default number of samples (upstream defaults to 100; kept smaller so
/// `cargo bench` on the full suite stays tractable in CI containers).
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    bench_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Reads harness flags: `--bench` selects measurement mode (cargo
    /// passes it under `cargo bench`); a bare non-flag argument filters
    /// benchmarks by substring. Everything else is accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => self.bench_mode = true,
                "--test" => self.bench_mode = false,
                a if a.starts_with('-') => {}
                a => self.filter = Some(a.to_string()),
            }
        }
        self
    }

    fn selected(&self, id: &str) -> bool {
        match self.filter.as_deref() {
            None => true,
            Some(f) => id.contains(f),
        }
    }

    /// Benchmarks a single function under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: DEFAULT_SAMPLE_SIZE }
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.selected(id) {
            return;
        }
        if !self.bench_mode {
            // Test mode: execute the body once so the bench is exercised.
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            println!("test {id} ... ok (bench smoke run)");
            return;
        }
        // Calibrate: grow iters until one sample reaches the target time.
        let mut iters: u64 = 1;
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        loop {
            b.iters = iters;
            f(&mut b);
            if b.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 30 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                100
            } else {
                (TARGET_SAMPLE_TIME.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 100) as u64
            };
            iters = iters.saturating_mul(grow);
        }
        let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            b.iters = iters;
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        let median = samples[samples.len() / 2];
        let lo = samples[samples.len() / 10];
        let hi = samples[samples.len() - 1 - samples.len() / 10];
        println!("{id:<60} time: [{} {} {}]", fmt_ns(lo), fmt_ns(median), fmt_ns(hi));
    }

    /// Upstream prints a final summary; nothing to do here.
    pub fn final_summary(&mut self) {}
}

/// Formats a nanosecond figure with adaptive units, upstream-style.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Conversion of `&str` / `String` / [`BenchmarkId`] into a display id.
pub trait IntoBenchmarkId {
    /// The display form used in reports.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, keeping results opaque to the optimizer.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function, mirroring upstream's macro shapes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
