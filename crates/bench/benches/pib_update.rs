//! Bench: PIB's per-sample monitoring overhead (E14, Section 5.1).
//!
//! Compares bare strategy execution against execution + PIB statistics
//! (Δ̃ replay per candidate + the Equation-6 test), at several graph
//! sizes and test frequencies — quantifying the "unobtrusive" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpl_core::{Pib, PibConfig};
use qpl_graph::expected::ContextDistribution;
use qpl_graph::Strategy;
use qpl_workload::generator::{random_retrieval_model, random_tree_with_retrievals, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(retrievals: usize) -> (qpl_graph::InferenceGraph, Vec<qpl_graph::Context>) {
    let mut rng = StdRng::seed_from_u64(retrievals as u64);
    let g =
        random_tree_with_retrievals(&mut rng, &TreeParams::default(), retrievals, retrievals * 2);
    // Low success probabilities: statistics keep flowing without climbs.
    let model = random_retrieval_model(&mut rng, &g, (0.01, 0.1));
    let contexts: Vec<_> = (0..4096).map(|_| model.sample(&mut rng)).collect();
    (g, contexts)
}

fn bench_pib_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("pib_observe");
    for retrievals in [4usize, 8, 16] {
        let (g, contexts) = setup(retrievals);
        let theta = Strategy::left_to_right(&g);

        group.bench_with_input(BenchmarkId::new("bare", retrievals), &retrievals, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let ctx = &contexts[i % contexts.len()];
                i += 1;
                qpl_graph::context::execute(&g, &theta, std::hint::black_box(ctx))
            })
        });

        group.bench_with_input(
            BenchmarkId::new("bare_scratch", retrievals),
            &retrievals,
            |b, _| {
                let mut scratch = qpl_graph::RunScratch::new(&g);
                let mut i = 0;
                b.iter(|| {
                    let ctx = &contexts[i % contexts.len()];
                    i += 1;
                    qpl_graph::context::execute_into(
                        &g,
                        &theta,
                        std::hint::black_box(ctx),
                        &mut scratch,
                    )
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("pib_test_every_1", retrievals),
            &retrievals,
            |b, _| {
                let mut pib = Pib::new(&g, theta.clone(), PibConfig::new(1e-6));
                let mut i = 0;
                b.iter(|| {
                    let ctx = &contexts[i % contexts.len()];
                    i += 1;
                    pib.observe(&g, std::hint::black_box(ctx))
                })
            },
        );

        // observe_quiet skips the Trace materialization — the pure
        // monitoring overhead with zero per-sample allocation.
        group.bench_with_input(
            BenchmarkId::new("pib_quiet_test_every_1", retrievals),
            &retrievals,
            |b, _| {
                let mut pib = Pib::new(&g, theta.clone(), PibConfig::new(1e-6));
                let mut i = 0;
                b.iter(|| {
                    let ctx = &contexts[i % contexts.len()];
                    i += 1;
                    pib.observe_quiet(&g, std::hint::black_box(ctx))
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("pib_test_every_100", retrievals),
            &retrievals,
            |b, _| {
                let mut pib =
                    Pib::new(&g, theta.clone(), PibConfig::new(1e-6).with_test_every(100));
                let mut i = 0;
                b.iter(|| {
                    let ctx = &contexts[i % contexts.len()];
                    i += 1;
                    pib.observe(&g, std::hint::black_box(ctx))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pib_observe);
criterion_main!(benches);
