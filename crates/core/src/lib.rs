//! # qpl-core — the learning algorithms of Greiner (PODS'92)
//!
//! The paper's contribution: two statistical methods for improving a
//! satisficing query processor's *strategy*.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`transform`] | the transformation sets `T = {τⱼ}` (sibling swaps) of Section 3.2 |
//! | [`delta`] | the paired differences `Δ` and observable under-estimates `Δ̃` |
//! | [`pib1`] | **PIB₁**, the one-shot filter (Section 3.1, Equations 2–3) |
//! | [`pib`] | **PIB**, the anytime hill-climber (Figure 3, Equation 6, Theorem 1) |
//! | [`pib_andor`] | PIB for conjunctive (Note 4) and-or strategies |
//! | [`palo`] | **PALO**, the ε-local-optimum variant (\[CG91\]) |
//! | [`upsilon`] | **Υ_AOT**, the optimal-strategy algorithm for trees (\[Smi89\]/\[SK75\]) |
//! | [`pao`] | **PAO**, probably-approximately-optimal learning (Theorems 2–3) |
//! | [`smith`] | the fact-count baseline the paper critiques (Section 2) |
//! | [`greedy`] | a statistics-free greedy ordering baseline (visible selectivity + query connectivity) |
//!
//! The learners operate at the graph level (contexts are blocked-arc
//! classes); `qpl-engine` supplies contexts from real `⟨query, DB⟩`
//! pairs, and `qpl-workload` supplies the paper's worked examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod greedy;
pub mod palo;
pub mod pao;
pub mod pib;
pub mod pib1;
pub mod pib_andor;
pub mod smith;
pub mod transform;
pub mod upsilon;

pub use delta::DeltaScratch;
pub use greedy::GreedyHeuristic;
pub use palo::{Palo, PaloConfig};
pub use pao::{Pao, PaoConfig, PaoMode};
pub use pib::{CandidateState, ClimbRecord, ClimbState, Pib, PibConfig, PibState};
pub use pib1::{Pib1, Pib1Decision, Pib1Posteriori};
pub use pib_andor::{AndOrPib, AndOrSwap};
pub use smith::SmithHeuristic;
pub use transform::{SiblingSwap, TransformationSet};
pub use upsilon::{brute_force_optimal, optimal_strategy, upsilon_aot};
