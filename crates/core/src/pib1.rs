//! PIB₁ — the one-shot "smart filter" (Section 3.1).
//!
//! PIB₁ watches `QP = ⟨G, Θ⟩` answer queries, maintaining the statistics
//! needed to decide whether one *specific* proposed transformation
//! (interchanging sibling arcs `r₁`, `r₂`) would improve the expected
//! cost. It permits the switch only when Equation 2 holds for the
//! accumulated under-estimates:
//!
//! ```text
//! Δ̃[Θ, Θ', S]  >  Λ · sqrt((|S|/2) · ln(1/δ))
//! ```
//!
//! which guarantees, with confidence `1 − δ`, that `C[Θ'] < C[Θ]`.
//!
//! For the Figure-1 graph this reduces to the paper's Equation 3 counter
//! form `k_g·f*(R_p) − k_p·f*(R_g) ≥ (f*(R_p)+f*(R_g))·sqrt((m/2)ln(1/δ))`
//! — the tests verify the two formulations coincide.

use crate::delta::{delta_tilde_with, DeltaScratch};
use crate::transform::SiblingSwap;
use qpl_graph::batch::{execute_batch, BatchRun, ContextBatch};
use qpl_graph::context::{cost_into, Context, RunScratch, Trace};
use qpl_graph::graph::InferenceGraph;
use qpl_graph::program::StrategyProgram;
use qpl_graph::strategy::Strategy;
use qpl_graph::GraphError;
use qpl_stats::PairedDifference;

/// PIB₁'s verdict after a batch of observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pib1Decision {
    /// Equation 2 holds: switch to the transformed strategy.
    Switch,
    /// Insufficient evidence: keep the current strategy.
    Keep,
}

/// The one-shot filter for a single proposed transformation.
#[derive(Debug, Clone)]
pub struct Pib1 {
    theta: Strategy,
    theta_prime: Strategy,
    delta: f64,
    acc: PairedDifference,
    scratch: DeltaScratch,
}

impl Pib1 {
    /// Creates the filter for the proposed sibling swap of `theta`.
    ///
    /// # Errors
    /// [`GraphError::InapplicableTransform`] if the swap cannot be
    /// applied to `theta`, or [`GraphError::BadProbability`] for a bad
    /// `δ`.
    pub fn new(
        g: &InferenceGraph,
        theta: Strategy,
        swap: SiblingSwap,
        delta: f64,
    ) -> Result<Self, GraphError> {
        if !(delta > 0.0 && delta < 1.0) {
            return Err(GraphError::BadProbability(delta));
        }
        let theta_prime = swap.apply(g, &theta)?;
        let lambda = swap.lambda(g);
        Ok(Self {
            theta,
            theta_prime,
            delta,
            acc: PairedDifference::new(lambda),
            scratch: DeltaScratch::new(g),
        })
    }

    /// The monitored strategy `Θ`.
    pub fn theta(&self) -> &Strategy {
        &self.theta
    }

    /// The proposed strategy `Θ'`.
    pub fn theta_prime(&self) -> &Strategy {
        &self.theta_prime
    }

    /// Samples observed so far (`m`).
    pub fn samples(&self) -> u64 {
        self.acc.count()
    }

    /// Accumulated `Δ̃[Θ, Θ', S]`.
    pub fn accumulated(&self) -> f64 {
        self.acc.sum()
    }

    /// Observes one context: runs `Θ`, updates the statistics, and
    /// returns the execution trace (the caller typically also wants the
    /// answer).
    pub fn observe(&mut self, g: &InferenceGraph, ctx: &Context) -> Trace {
        let trace = qpl_graph::context::execute(g, &self.theta, ctx);
        self.absorb(g, &trace);
        trace
    }

    /// Observes a whole [`ContextBatch`] at once: `Θ` runs as a compiled
    /// program over every lane, `Θ'` is probed against the
    /// pessimistic-completion planes, and the per-lane differences are
    /// recorded in lane order — bit-identical to calling
    /// [`observe`](Self::observe) per lane. PIB₁'s pair is fixed, so no
    /// mid-batch recompilation can occur; strategies the compiler
    /// rejects fall back to the scalar interpreter.
    pub fn observe_batch(&mut self, g: &InferenceGraph, batch: &ContextBatch) {
        let programs = StrategyProgram::compile(g, &self.theta)
            .and_then(|t| StrategyProgram::compile(g, &self.theta_prime).map(|tp| (t, tp)));
        let Ok((theta_prog, prime_prog)) = programs else {
            let mut ctx = Context::all_open(g);
            for lane in 0..batch.lanes() {
                batch.extract_lane(lane, &mut ctx);
                self.observe(g, &ctx);
            }
            return;
        };
        let mut run = BatchRun::new();
        let mut cand = BatchRun::new();
        let mut completed = ContextBatch::new(0, 0);
        let active = batch.active_mask();
        execute_batch(&theta_prog, batch, active, &mut run);
        run.completion_into(g, &mut completed);
        execute_batch(&prime_prog, &completed, active, &mut cand);
        for lane in 0..batch.lanes() {
            self.acc.record(run.cost(lane) - cand.cost(lane));
        }
    }

    /// Updates statistics from an externally produced trace of `Θ`.
    pub fn absorb(&mut self, g: &InferenceGraph, trace: &Trace) {
        self.acc.record(delta_tilde_with(
            g,
            trace.cost,
            &trace.events,
            &self.theta_prime,
            &mut self.scratch,
        ));
    }

    /// Equation 2's verdict on the evidence so far.
    ///
    /// PIB₁ is the paper's *one-shot* filter: the `1 − δ` guarantee
    /// covers a **single** evaluation of this test at a sample size
    /// chosen in advance. Polling it after every sample (as some tests
    /// here do for convenience) re-uses the same δ repeatedly; for a
    /// sequentially-valid version use [`Pib`](crate::pib::Pib), whose
    /// `δᵢ = 6δ/(π²i²)` schedule is built for exactly that.
    pub fn decision(&self) -> Pib1Decision {
        if self.acc.certifies_improvement(self.delta) {
            Pib1Decision::Switch
        } else {
            Pib1Decision::Keep
        }
    }

    /// Equation 2's threshold at the current sample count.
    pub fn threshold(&self) -> f64 {
        self.acc.threshold(self.delta)
    }

    /// Emits the filter's current evidence as one `core.pib1.decision`
    /// event (samples `m`, Δ̃ sum, Equation 2 threshold, switch verdict)
    /// plus a `core.pib1.samples` counter. Call at the one-shot decision
    /// point; the sink observes, never steers.
    pub fn emit_to(&self, sink: &mut dyn qpl_obs::MetricsSink) {
        sink.counter("core.pib1.samples", self.samples());
        if sink.enabled() {
            let switch = self.decision() == Pib1Decision::Switch;
            sink.event(
                "core.pib1.decision",
                &[
                    ("samples", self.samples() as f64),
                    ("delta_sum", self.accumulated()),
                    ("threshold", self.threshold()),
                    ("switch", f64::from(u8::from(switch))),
                ],
            );
        }
    }
}

/// The *a posteriori* comparator the paper describes before introducing
/// Δ̃: "first construct the new Θ' and then time both it, and the
/// original Θ, solving a particular set of queries … this corresponds to
/// the paired-t confidence \[LK82\]".
///
/// Each context is executed under **both** strategies, so the exact
/// paired difference `Δ = c(Θ, I) − c(Θ', I)` feeds Equation 2 — twice
/// the query-processing work of [`Pib1`], but strictly more informative
/// evidence (`E[Δ] ≥ E[Δ̃]`), so it can approve switches the a priori
/// filter cannot (see the comparison test below and experiment E16's
/// discussion of Δ̃'s conservatism).
#[derive(Debug, Clone)]
pub struct Pib1Posteriori {
    theta: Strategy,
    theta_prime: Strategy,
    delta: f64,
    acc: PairedDifference,
    scratch: RunScratch,
}

impl Pib1Posteriori {
    /// Creates the a posteriori comparator for a proposed sibling swap.
    ///
    /// # Errors
    /// As for [`Pib1::new`].
    pub fn new(
        g: &InferenceGraph,
        theta: Strategy,
        swap: SiblingSwap,
        delta: f64,
    ) -> Result<Self, GraphError> {
        if !(delta > 0.0 && delta < 1.0) {
            return Err(GraphError::BadProbability(delta));
        }
        let theta_prime = swap.apply(g, &theta)?;
        let lambda = swap.lambda(g);
        Ok(Self {
            theta,
            theta_prime,
            delta,
            acc: PairedDifference::new(lambda),
            scratch: RunScratch::new(g),
        })
    }

    /// Runs *both* strategies on the context and records the exact
    /// paired difference. Returns `(c(Θ, I), c(Θ', I))`.
    pub fn observe(&mut self, g: &InferenceGraph, ctx: &Context) -> (f64, f64) {
        let a = cost_into(g, &self.theta, ctx, &mut self.scratch);
        let b = cost_into(g, &self.theta_prime, ctx, &mut self.scratch);
        self.acc.record(a - b);
        (a, b)
    }

    /// Samples observed so far.
    pub fn samples(&self) -> u64 {
        self.acc.count()
    }

    /// Equation 2's verdict on the exact-difference evidence.
    pub fn decision(&self) -> Pib1Decision {
        if self.acc.certifies_improvement(self.delta) {
            Pib1Decision::Switch
        } else {
            Pib1Decision::Keep
        }
    }
}

/// The paper's Equation 3, in its original counter form for a two-path
/// disjunctive graph: given `m` samples of which `k_p` found a solution
/// under `r₁` and `k_g` found one under `r₂` but not `r₁`, switch iff
///
/// ```text
/// k_g·f*(r₁) − k_p·f*(r₂)  ≥  (f*(r₁)+f*(r₂))·sqrt((m/2)·ln(1/δ))
/// ```
pub fn equation3_switch(
    f_star_r1: f64,
    f_star_r2: f64,
    m: u64,
    k_p: u64,
    k_g: u64,
    delta: f64,
) -> bool {
    let lhs = k_g as f64 * f_star_r1 - k_p as f64 * f_star_r2;
    let rhs = qpl_stats::chernoff::sum_threshold(m, delta, f_star_r1 + f_star_r2);
    lhs >= rhs
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_graph::expected::{ContextDistribution, FiniteDistribution, IndependentModel};
    use qpl_graph::graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g_a() -> InferenceGraph {
        let mut b = GraphBuilder::new("instructor(κ)");
        let root = b.root();
        let (_, prof) = b.reduction(root, "R_p", 1.0, "prof(κ)");
        b.retrieval(prof, "D_p", 1.0);
        let (_, grad) = b.reduction(root, "R_g", 1.0, "grad(κ)");
        b.retrieval(grad, "D_g", 1.0);
        b.finish().unwrap()
    }

    fn root_swap(g: &InferenceGraph) -> SiblingSwap {
        SiblingSwap::new(g, g.arc_by_label("R_p").unwrap(), g.arc_by_label("R_g").unwrap()).unwrap()
    }

    #[test]
    fn switches_when_alternative_clearly_better() {
        // grad succeeds 80% of the time, prof 5%: grad-first is much
        // better; PIB₁ must discover this.
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.05, 0.8]).unwrap();
        let mut pib1 = Pib1::new(&g, Strategy::left_to_right(&g), root_swap(&g), 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mut switched_at = None;
        for i in 0..5000 {
            pib1.observe(&g, &model.sample(&mut rng));
            if pib1.decision() == Pib1Decision::Switch {
                switched_at = Some(i);
                break;
            }
        }
        let at = switched_at.expect("PIB₁ should approve the switch");
        assert!(at < 2000, "took too long: {at}");
    }

    #[test]
    fn keeps_when_current_strategy_is_optimal() {
        // prof succeeds 80%, grad 5%: prof-first is already optimal;
        // PIB₁ must never approve the swap.
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.8, 0.05]).unwrap();
        let mut pib1 = Pib1::new(&g, Strategy::left_to_right(&g), root_swap(&g), 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..5000 {
            pib1.observe(&g, &model.sample(&mut rng));
            assert_eq!(pib1.decision(), Pib1Decision::Keep);
        }
    }

    #[test]
    fn counter_form_matches_general_form_on_g_a() {
        // Drive both formulations with the same context stream and check
        // they agree at every step. On G_A with Θ₁ observed:
        //   solution under R_p             → Δ̃ = −f*(R_g), counts k_p;
        //   solution under R_g (not R_p)   → Δ̃ = +f*(R_p), counts k_g;
        //   no solution                    → Δ̃ = 0.
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.3, 0.5]).unwrap();
        let mut pib1 = Pib1::new(&g, Strategy::left_to_right(&g), root_swap(&g), 0.1).unwrap();
        let dp = g.arc_by_label("D_p").unwrap();
        let dg = g.arc_by_label("D_g").unwrap();
        let (mut m, mut k_p, mut k_g) = (0u64, 0u64, 0u64);
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..800 {
            let ctx = model.sample(&mut rng);
            pib1.observe(&g, &ctx);
            m += 1;
            if !ctx.is_blocked(dp) {
                k_p += 1;
            } else if !ctx.is_blocked(dg) {
                k_g += 1;
            }
            let general = pib1.decision() == Pib1Decision::Switch;
            let counters = equation3_switch(2.0, 2.0, m, k_p, k_g, 0.1);
            assert_eq!(general, counters, "divergence at m={m}, k_p={k_p}, k_g={k_g}");
        }
    }

    #[test]
    fn false_positive_rate_below_delta() {
        // Make both strategies *exactly* equal in cost (symmetric
        // probabilities) and measure how often PIB₁ wrongly approves
        // within a fixed horizon; must be ≤ δ (any approval when
        // D[Θ,Θ'] = 0 counts against the bound's slack).
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.4, 0.4]).unwrap();
        let delta = 0.1;
        let trials = 400;
        let horizon = 300;
        let mut wrong = 0;
        for t in 0..trials {
            let mut pib1 =
                Pib1::new(&g, Strategy::left_to_right(&g), root_swap(&g), delta).unwrap();
            let mut rng = StdRng::seed_from_u64(1000 + t);
            for _ in 0..horizon {
                pib1.observe(&g, &model.sample(&mut rng));
                if pib1.decision() == Pib1Decision::Switch {
                    wrong += 1;
                    break;
                }
            }
        }
        let rate = wrong as f64 / trials as f64;
        assert!(rate <= delta, "false-positive rate {rate} exceeds δ={delta}");
    }

    #[test]
    fn works_with_finite_distributions() {
        // The Section-2 "minors" scenario: no queried individual is a
        // professor, so grad-first strictly dominates; PIB₁ approves.
        let g = g_a();
        let dp = g.arc_by_label("D_p").unwrap();
        let dg = g.arc_by_label("D_g").unwrap();
        let minors = FiniteDistribution::new(vec![
            (Context::with_blocked(&g, &[dp]), 0.7),     // grad holds
            (Context::with_blocked(&g, &[dp, dg]), 0.3), // neither holds
        ])
        .unwrap();
        let mut pib1 = Pib1::new(&g, Strategy::left_to_right(&g), root_swap(&g), 0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut approved = false;
        for _ in 0..3000 {
            pib1.observe(&g, &minors.sample(&mut rng));
            if pib1.decision() == Pib1Decision::Switch {
                approved = true;
                break;
            }
        }
        assert!(approved);
    }

    #[test]
    fn batched_observation_matches_scalar_byte_for_byte() {
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.3, 0.5]).unwrap();
        // Every plane width, always with a partial last batch
        // (500 = 7×64 + 52 = 3×128 + 116 = 256 + 244 = 488 + 12).
        for plane_lanes in [64usize, 128, 256, 512] {
            let mut rng = StdRng::seed_from_u64(23);
            let ctxs: Vec<Context> = (0..500).map(|_| model.sample(&mut rng)).collect();
            let mut scalar =
                Pib1::new(&g, Strategy::left_to_right(&g), root_swap(&g), 0.1).unwrap();
            let mut batched =
                Pib1::new(&g, Strategy::left_to_right(&g), root_swap(&g), 0.1).unwrap();
            for chunk in ctxs.chunks(plane_lanes) {
                let mut b = ContextBatch::new(g.arc_count(), chunk.len());
                for (lane, ctx) in chunk.iter().enumerate() {
                    scalar.observe(&g, ctx);
                    b.set_lane(lane, ctx);
                }
                batched.observe_batch(&g, &b);
                assert_eq!(scalar.samples(), batched.samples(), "width {plane_lanes}");
                assert_eq!(scalar.accumulated().to_bits(), batched.accumulated().to_bits());
                assert_eq!(scalar.decision(), batched.decision());
                assert_eq!(scalar.threshold().to_bits(), batched.threshold().to_bits());
            }
        }
    }

    #[test]
    fn bad_delta_rejected() {
        let g = g_a();
        assert!(Pib1::new(&g, Strategy::left_to_right(&g), root_swap(&g), 0.0).is_err());
        assert!(Pib1::new(&g, Strategy::left_to_right(&g), root_swap(&g), 1.0).is_err());
    }

    #[test]
    fn a_posteriori_sees_what_a_priori_cannot() {
        // E16's construction in miniature: the true improvement is real
        // (D > 0) but the observable under-estimate has E[Δ̃] < 0, so the
        // a priori filter never switches while the paired-t comparator
        // does. Root: cheap D_0 (p=.17) vs a subtree whose two
        // retrievals are perfectly correlated (q=.3) — here expressed
        // directly as a finite distribution.
        let mut b = qpl_graph::GraphBuilder::new("q");
        let root = b.root();
        let d0 = b.retrieval(root, "D_0", 1.0);
        let (r, sub) = b.reduction(root, "R", 1.0, "sub");
        let d1 = b.retrieval(sub, "D_1", 1.0);
        let d2 = b.retrieval(sub, "D_2", 1.0);
        let g = b.finish().unwrap();
        // With p0 = 0.10, q = 0.3: C[D0-first] = 1 + 0.9·2.7 = 3.43 and
        // C[sub-first] = 2.7 + 0.7 = 3.40, so swapping the subtree ahead
        // of D_0 is a true +0.03 improvement. The observable evidence,
        // however, is E[Δ̃] = 0.27·(+1) + 0.10·(−3) = −0.03 < 0: when
        // D_0 succeeds, the subtree is unexplored and assumed fully
        // blocked, overcharging the alternative by its whole f*.
        let (p0, q) = (0.10, 0.3);
        let truth = FiniteDistribution::new(vec![
            (Context::with_blocked(&g, &[]), p0 * q),
            (Context::with_blocked(&g, &[d1, d2]), p0 * (1.0 - q)),
            (Context::with_blocked(&g, &[d0]), (1.0 - p0) * q),
            (Context::with_blocked(&g, &[d0, d1, d2]), (1.0 - p0) * (1.0 - q)),
        ])
        .unwrap();
        let by = |arcs: Vec<qpl_graph::ArcId>| Strategy::from_arcs(&g, arcs).unwrap();
        let d0_first = by(vec![d0, r, d1, d2]);
        let swap = SiblingSwap::new(&g, d0, r).unwrap();
        // True D = C[d0_first] − C[sub_first] = 3.43 − 3.4 = +0.03 > 0.
        let sub_first = swap.apply(&g, &d0_first).unwrap();
        let c_d0 = truth.expected_cost(&g, &d0_first);
        let c_sub = truth.expected_cost(&g, &sub_first);
        assert!(c_sub < c_d0, "swap is a true improvement: {c_sub} < {c_d0}");

        let mut apriori = Pib1::new(&g, d0_first.clone(), swap, 0.05).unwrap();
        let mut aposteriori = Pib1Posteriori::new(&g, d0_first, swap, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(61);
        let mut posterior_switched = None;
        for i in 0..400_000u32 {
            let ctx = truth.sample(&mut rng);
            apriori.observe(&g, &ctx);
            aposteriori.observe(&g, &ctx);
            assert_eq!(
                apriori.decision(),
                Pib1Decision::Keep,
                "a priori filter must stay blind to this improvement (E[Δ̃] < 0)"
            );
            if posterior_switched.is_none() && aposteriori.decision() == Pib1Decision::Switch {
                posterior_switched = Some(i);
            }
        }
        assert!(
            posterior_switched.is_some(),
            "paired-t comparator should certify the +0.03 improvement"
        );
    }

    #[test]
    fn a_posteriori_agrees_on_easy_cases() {
        // On a clearly-better alternative both filters approve; the
        // paired-t one with fewer samples.
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.05, 0.8]).unwrap();
        let swap = root_swap(&g);
        let mut apriori = Pib1::new(&g, Strategy::left_to_right(&g), swap, 0.05).unwrap();
        let mut aposteriori =
            Pib1Posteriori::new(&g, Strategy::left_to_right(&g), swap, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(62);
        let (mut m_pri, mut m_post) = (None, None);
        for i in 0..10_000u32 {
            let ctx = model.sample(&mut rng);
            apriori.observe(&g, &ctx);
            aposteriori.observe(&g, &ctx);
            if m_pri.is_none() && apriori.decision() == Pib1Decision::Switch {
                m_pri = Some(i);
            }
            if m_post.is_none() && aposteriori.decision() == Pib1Decision::Switch {
                m_post = Some(i);
            }
            if m_pri.is_some() && m_post.is_some() {
                break;
            }
        }
        let (pri, post) = (m_pri.unwrap(), m_post.unwrap());
        assert!(post <= pri, "exact evidence should not be slower: {post} vs {pri}");
    }

    #[test]
    fn threshold_grows_like_sqrt_m() {
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.5, 0.5]).unwrap();
        let mut pib1 = Pib1::new(&g, Strategy::left_to_right(&g), root_swap(&g), 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..100 {
            pib1.observe(&g, &model.sample(&mut rng));
        }
        let t100 = pib1.threshold();
        for _ in 0..300 {
            pib1.observe(&g, &model.sample(&mut rng));
        }
        let t400 = pib1.threshold();
        assert!((t400 / t100 - 2.0).abs() < 1e-9, "sqrt(400/100) = 2");
    }
}
