//! Crash-injection property tests for the durability subsystem.
//!
//! Each case builds a real store on disk, simulates a crash by
//! mutilating the on-disk bytes — truncating the WAL at an arbitrary
//! global byte offset, or flipping an arbitrary byte — and reopens.
//! The recovery contract under test:
//!
//! * **Never panic, never partial-apply** — [`Store::open`] returns
//!   `Ok` for every torn/corrupt tail, and every recovered record is
//!   bit-identical to one that was appended (frames are atomic: a
//!   record is replayed whole or not at all).
//! * **Longest valid prefix** — the recovered records are exactly a
//!   prefix of the appended sequence, and everything the durability
//!   contract promises survives: with `EveryRecord` fsync *every*
//!   append survives any tail truncation that spares its bytes.
//! * **Snapshot coverage** — records at or below the checkpoint's
//!   `through_seq` are never replayed, no matter where the tail tore.
//! * **Repair converges** — after one recovery, the log is clean:
//!   appending continues and a further reopen sees old prefix + new
//!   records with no torn-tail flag.

use proptest::prelude::*;
use qpl_store::{FsyncPolicy, Record, Snapshot, Store, StoreConfig};
use std::fs::{self, OpenOptions};
use std::path::PathBuf;

fn tmpdir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("qpl-crash-{tag}-{}", std::process::id()))
        .join(format!("{case}-{:?}", std::thread::current().id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn delta(i: u64, fact_len: usize) -> Record {
    // Variable-length payloads so frame boundaries land at interesting
    // byte offsets relative to the segment size.
    let filler = "x".repeat(fact_len);
    Record::Delta { insert: vec![format!("edge(n{i}{filler}, n{})", i + 1)], retract: vec![] }
}

/// WAL segment paths in replay (lexicographic = base_seq) order.
fn segments(dir: &PathBuf) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        })
        .collect();
    segs.sort();
    segs
}

/// Truncates the WAL's concatenated byte stream to `keep` bytes: the
/// segment containing the cut is shortened, later segments deleted.
fn truncate_wal_at(dir: &PathBuf, keep: u64) {
    let mut remaining = keep;
    for seg in segments(dir) {
        let len = fs::metadata(&seg).unwrap().len();
        if remaining >= len {
            remaining -= len;
            continue;
        }
        if remaining == 0 {
            fs::remove_file(&seg).unwrap();
        } else {
            let f = OpenOptions::new().write(true).open(&seg).unwrap();
            f.set_len(remaining).unwrap();
            remaining = 0;
        }
    }
}

fn wal_total_bytes(dir: &PathBuf) -> u64 {
    segments(dir).iter().map(|s| fs::metadata(s).unwrap().len()).sum()
}

/// Asserts `got` is a prefix of `appended` and returns its length.
fn assert_prefix(got: &[Record], appended: &[Record]) -> usize {
    assert!(
        got.len() <= appended.len(),
        "recovered {} records but only {} were appended",
        got.len(),
        appended.len()
    );
    for (i, (g, a)) in got.iter().zip(appended).enumerate() {
        assert_eq!(g, a, "recovered record {i} is not bit-identical to the appended one");
    }
    got.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tail truncation at an arbitrary global byte offset: recovery
    /// never panics, lands on the longest valid prefix, and loses
    /// nothing the truncation spared.
    #[test]
    fn truncated_tail_recovers_longest_valid_prefix(
        case in 0u64..u64::MAX,
        lens in proptest::collection::vec(0usize..40, 1..20),
        segment_bytes in 32u64..512,
        cut_back in 0u64..2048,
    ) {
        let dir = tmpdir("trunc", case);
        let cfg = StoreConfig { fsync: FsyncPolicy::EveryRecord, segment_bytes };
        let (mut store, _) = Store::open(&dir, cfg).unwrap();
        let appended: Vec<Record> =
            lens.iter().enumerate().map(|(i, &l)| delta(i as u64, l)).collect();
        // Frame byte lengths, to compute which records a cut spares.
        let mut frame_ends: Vec<u64> = Vec::new();
        let mut acc = 0u64;
        for rec in &appended {
            store.append(rec).unwrap();
            acc += 16 + rec.encode().len() as u64;
            frame_ends.push(acc);
        }
        store.commit().unwrap();
        drop(store);

        let total = wal_total_bytes(&dir);
        let keep = total.saturating_sub(cut_back % (total + 1));
        truncate_wal_at(&dir, keep);

        let (_, rec) = Store::open(&dir, cfg).unwrap();
        let survived = assert_prefix(&rec.records, &appended);
        // Headers (16 bytes per segment) interleave with frames, so a
        // record whose frame fully fits in `keep` minus the header
        // budget is a lower bound on what must survive. With one
        // segment per ~few records we can still bound tightly: every
        // record whose frame end + worst-case header overhead fits is
        // guaranteed. Conservative bound: frames preceded by at most
        // one header per record.
        let guaranteed = frame_ends
            .iter()
            .enumerate()
            .filter(|&(i, &end)| end + 16 * (i as u64 + 2) <= keep)
            .count();
        prop_assert!(
            survived >= guaranteed,
            "cut at {keep}/{total} bytes kept {survived} records, but {guaranteed} were fully on disk"
        );
        if keep == total {
            prop_assert_eq!(survived, appended.len(), "untouched log must replay whole");
            prop_assert!(!rec.torn_tail);
        }
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    /// A single flipped byte anywhere in the WAL: recovery never
    /// panics and still replays a bit-identical prefix.
    #[test]
    fn corrupt_byte_recovers_a_prefix_without_panicking(
        case in 0u64..u64::MAX,
        lens in proptest::collection::vec(0usize..40, 1..16),
        segment_bytes in 32u64..512,
        flip_at in 0u64..4096,
        flip_with in 1u8..=255,
    ) {
        let dir = tmpdir("flip", case);
        let cfg = StoreConfig { fsync: FsyncPolicy::EveryRecord, segment_bytes };
        let (mut store, _) = Store::open(&dir, cfg).unwrap();
        let appended: Vec<Record> =
            lens.iter().enumerate().map(|(i, &l)| delta(i as u64, l)).collect();
        for r in &appended {
            store.append(r).unwrap();
        }
        store.commit().unwrap();
        drop(store);

        // Flip one byte at a global offset into the concatenated WAL.
        let total = wal_total_bytes(&dir);
        let mut target = flip_at % total;
        for seg in segments(&dir) {
            let len = fs::metadata(&seg).unwrap().len();
            if target < len {
                let mut bytes = fs::read(&seg).unwrap();
                bytes[target as usize] ^= flip_with;
                fs::write(&seg, &bytes).unwrap();
                break;
            }
            target -= len;
        }

        let (_, rec) = Store::open(&dir, cfg).unwrap();
        prop_assert!(rec.torn_tail, "a flipped byte must be detected");
        assert_prefix(&rec.records, &appended);
        prop_assert!(rec.records.len() < appended.len(), "corruption must cost at least one record");
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    /// Checkpoint + torn tail: the snapshot always survives (it is
    /// written atomically and the tear is in the WAL), and replayed
    /// records are exactly a prefix of the post-checkpoint appends.
    #[test]
    fn torn_tail_after_checkpoint_replays_only_uncovered_prefix(
        case in 0u64..u64::MAX,
        before in 1usize..8,
        after in 1usize..8,
        cut_back in 1u64..512,
    ) {
        let dir = tmpdir("ckpt", case);
        let cfg = StoreConfig { fsync: FsyncPolicy::EveryRecord, segment_bytes: 128 };
        let (mut store, _) = Store::open(&dir, cfg).unwrap();
        for i in 0..before {
            store.append(&delta(i as u64, 4)).unwrap();
        }
        let snap = Snapshot { generation: before as u64, ..Snapshot::default() };
        let info = store.checkpoint(&snap).unwrap();
        prop_assert_eq!(info.through_seq, before as u64);
        let tail: Vec<Record> =
            (0..after).map(|i| delta(1000 + i as u64, 4)).collect();
        for r in &tail {
            store.append(r).unwrap();
        }
        store.commit().unwrap();
        drop(store);

        let total = wal_total_bytes(&dir);
        truncate_wal_at(&dir, total.saturating_sub(cut_back % total));

        let (_, rec) = Store::open(&dir, cfg).unwrap();
        let snap = rec.snapshot.expect("atomically-written snapshot must survive a WAL tear");
        prop_assert_eq!(snap.generation, before as u64);
        assert_prefix(&rec.records, &tail);
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    /// Recovery repairs the log: appends continue after a tear, and the
    /// next reopen is clean with prefix + new records intact.
    #[test]
    fn repaired_log_appends_cleanly_after_recovery(
        case in 0u64..u64::MAX,
        lens in proptest::collection::vec(0usize..40, 2..12),
        segment_bytes in 32u64..512,
        cut_back in 1u64..1024,
    ) {
        let dir = tmpdir("repair", case);
        let cfg = StoreConfig { fsync: FsyncPolicy::EveryRecord, segment_bytes };
        let (mut store, _) = Store::open(&dir, cfg).unwrap();
        let appended: Vec<Record> =
            lens.iter().enumerate().map(|(i, &l)| delta(i as u64, l)).collect();
        for r in &appended {
            store.append(r).unwrap();
        }
        store.commit().unwrap();
        drop(store);

        let total = wal_total_bytes(&dir);
        truncate_wal_at(&dir, total.saturating_sub(cut_back % total));

        let (mut store, rec) = Store::open(&dir, cfg).unwrap();
        let survived = rec.records.clone();
        assert_prefix(&survived, &appended);
        let fresh = delta(9999, 8);
        store.append(&fresh).unwrap();
        store.commit().unwrap();
        drop(store);

        let (_, rec) = Store::open(&dir, cfg).unwrap();
        prop_assert!(!rec.torn_tail, "repair must leave a clean tail");
        let mut expect = survived;
        expect.push(fresh);
        prop_assert_eq!(rec.records, expect);
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }
}

/// A corrupt snapshot file surfaces as a typed error — never a panic,
/// never a silently-empty store.
#[test]
fn corrupt_snapshot_is_a_typed_error_not_a_panic() {
    let dir = tmpdir("snapcorrupt", 0);
    let cfg = StoreConfig::default();
    let (mut store, _) = Store::open(&dir, cfg).unwrap();
    store.append(&delta(0, 4)).unwrap();
    store.checkpoint(&Snapshot { generation: 1, ..Snapshot::default() }).unwrap();
    drop(store);
    let snap = dir.join("snapshot.qpl");
    let mut bytes = fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&snap, &bytes).unwrap();
    let err = Store::open(&dir, cfg).unwrap_err();
    assert!(matches!(err, qpl_store::StoreError::Corrupt { .. }), "got {err}");
    let _ = fs::remove_dir_all(dir.parent().unwrap());
}
