//! Dynamic batcher + admission controller: a bounded FIFO of jobs that
//! coalesces into 64-lane planes.
//!
//! The batcher is a *synchronous state machine* — it never touches a
//! clock or a thread by itself. Callers pass `Instant`s in, which keeps
//! every transition deterministic and directly testable (the proptest
//! in `tests/batcher_props.rs` drives it with synthetic clocks).
//!
//! ## State machine
//!
//! ```text
//!          offer(job, now)                    cut_plane()
//! client ──────────────────▶ [FIFO queue] ──────────────────▶ executor
//!              │                  │
//!              │ queue full       │ ready(now, max_wait) when
//!              ▼                  │   · ≥ LANES lanes queued (a full
//!          Err(job)               │     plane exists), or
//!        ("overloaded")           │   · the oldest job has waited
//!                                 ▼     ≥ max_wait (flush deadline)
//! ```
//!
//! * **Admission** is lane-denominated: a queue holds at most
//!   `cap_lanes` query lanes summed over jobs. [`Batcher::offer`]
//!   returns the job back (`Err`) when it does not fit — the caller
//!   sheds it with an `overloaded` response. A job is never partially
//!   admitted.
//! * **Readiness** ([`Batcher::ready`]) fires on *fullness* (≥
//!   [`LANES`] lanes queued) or *staleness* (the oldest job has waited
//!   `max_wait`), so single queries are never starved behind an
//!   unfilled plane.
//! * **Cutting** ([`Batcher::cut_plane`]) pops whole jobs FIFO until
//!   the next job would overflow the plane. Jobs are never split across
//!   planes (each is at most [`LANES`] lanes wide, enforced at request
//!   parse time), so a batch request's lanes always execute together.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use qpl_graph::batch::LANES;

/// How many plane lanes a queued job occupies (its query count).
pub trait LaneWeight {
    /// Lanes this job needs, `1..=LANES`.
    fn lanes(&self) -> usize;
}

/// Bounded FIFO of jobs with lane-denominated admission and
/// deadline-or-fullness plane cutting.
#[derive(Debug)]
pub struct Batcher<T> {
    queue: VecDeque<(T, Instant)>,
    lanes_queued: usize,
    cap_lanes: usize,
    shed: u64,
    admitted: u64,
}

impl<T: LaneWeight> Batcher<T> {
    /// An empty batcher admitting at most `cap_lanes` queued lanes.
    pub fn new(cap_lanes: usize) -> Self {
        Self { queue: VecDeque::new(), lanes_queued: 0, cap_lanes, shed: 0, admitted: 0 }
    }

    /// Admits `job` (stamped with arrival time `now`) or sheds it.
    ///
    /// # Errors
    /// Returns the job back when admitting it would exceed the lane
    /// cap; the caller owes the client an `overloaded` response.
    pub fn offer(&mut self, job: T, now: Instant) -> Result<(), T> {
        let w = job.lanes();
        debug_assert!(
            (1..=LANES).contains(&w),
            "jobs are 1..=LANES lanes wide (enforced at request parse)"
        );
        if self.lanes_queued + w > self.cap_lanes {
            self.shed += 1;
            return Err(job);
        }
        self.lanes_queued += w;
        self.admitted += 1;
        self.queue.push_back((job, now));
        Ok(())
    }

    /// Whether a plane should be cut now: a full plane is queued, or
    /// the oldest job has waited at least `max_wait`.
    pub fn ready(&self, now: Instant, max_wait: Duration) -> bool {
        if self.lanes_queued >= LANES {
            return true;
        }
        match self.queue.front() {
            Some((_, arrived)) => now.duration_since(*arrived) >= max_wait,
            None => false,
        }
    }

    /// When the oldest queued job hits its flush deadline (`None` when
    /// empty) — what an executor sleeps until.
    pub fn deadline(&self, max_wait: Duration) -> Option<Instant> {
        self.queue.front().map(|(_, arrived)| *arrived + max_wait)
    }

    /// Pops whole jobs FIFO into `out` (cleared first) until the plane
    /// is full or the next job would not fit. Returns the lane total.
    /// Empty queue → 0 lanes, empty `out`.
    pub fn cut_plane(&mut self, out: &mut Vec<(T, Instant)>) -> usize {
        out.clear();
        let mut lanes = 0usize;
        while let Some((job, _)) = self.queue.front() {
            let w = job.lanes();
            if lanes + w > LANES {
                break;
            }
            lanes += w;
            out.push(self.queue.pop_front().expect("front exists"));
            if lanes == LANES {
                break;
            }
        }
        self.lanes_queued -= lanes;
        lanes
    }

    /// Jobs currently queued.
    pub fn jobs_queued(&self) -> usize {
        self.queue.len()
    }

    /// Lanes currently queued (summed over jobs).
    pub fn lanes_queued(&self) -> usize {
        self.lanes_queued
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Jobs shed since construction.
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// Jobs admitted since construction.
    pub fn admitted_count(&self) -> u64 {
        self.admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct J(usize);
    impl LaneWeight for J {
        fn lanes(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn admission_sheds_past_the_lane_cap() {
        let t0 = Instant::now();
        let mut b = Batcher::new(10);
        assert!(b.offer(J(6), t0).is_ok());
        assert!(b.offer(J(4), t0).is_ok());
        let rejected = b.offer(J(1), t0);
        assert!(rejected.is_err(), "cap is lanes, not jobs");
        assert_eq!(b.shed_count(), 1);
        assert_eq!(b.admitted_count(), 2);
        assert_eq!(b.lanes_queued(), 10);
    }

    #[test]
    fn readiness_fires_on_fullness_or_staleness() {
        let t0 = Instant::now();
        let wait = Duration::from_millis(5);
        let mut b = Batcher::new(1000);
        assert!(!b.ready(t0, wait), "empty queue is never ready");
        b.offer(J(1), t0).unwrap();
        assert!(!b.ready(t0, wait), "one fresh lane is not ready");
        assert!(b.ready(t0 + wait, wait), "stale lane flushes");
        assert_eq!(b.deadline(wait), Some(t0 + wait));
        for _ in 0..63 {
            b.offer(J(1), t0).unwrap();
        }
        assert!(b.ready(t0, wait), "full plane is ready immediately");
    }

    #[test]
    fn cut_plane_pops_whole_jobs_up_to_64_lanes() {
        let t0 = Instant::now();
        let mut b = Batcher::new(1000);
        b.offer(J(40), t0).unwrap();
        b.offer(J(20), t0).unwrap();
        b.offer(J(10), t0).unwrap(); // would overflow: stays queued
        b.offer(J(4), t0).unwrap(); // FIFO: not reordered around the 10
        let mut out = Vec::new();
        assert_eq!(b.cut_plane(&mut out), 60);
        assert_eq!(out.len(), 2, "jobs are never split and never reordered");
        assert_eq!(b.lanes_queued(), 14);
        assert_eq!(b.cut_plane(&mut out), 14);
        assert!(b.is_empty());
        assert_eq!(b.cut_plane(&mut out), 0);
    }

    #[test]
    fn exact_fill_stops_at_the_plane_boundary() {
        let t0 = Instant::now();
        let mut b = Batcher::new(1000);
        for _ in 0..70 {
            b.offer(J(1), t0).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(b.cut_plane(&mut out), LANES);
        assert_eq!(out.len(), LANES);
        assert_eq!(b.lanes_queued(), 6);
    }
}
