//! Sample-complexity formulas for PAO (Theorems 2 and 3).
//!
//! * Equation 7 — for a tree-shaped graph with `n` retrievals, retrieval
//!   `dᵢ` must be sampled
//!   `m(dᵢ) = ⌈2·(n·F¬[dᵢ]/ε)²·ln(2n/δ)⌉` times so that
//!   `Υ_AOT(G, p̂)` is `ε`-optimal with probability `≥ 1 − δ`.
//! * Equation 8 — when some experiments may be unreachable, it suffices to
//!   *attempt to reach* experiment `eᵢ` on
//!   `m'(eᵢ) = ⌈2·(sqrt(2ε/(n·F¬[eᵢ]) + 1) − 1)⁻²·ln(4n/δ)⌉`
//!   contexts (Theorem 3); footnote 11 notes the asymptotic expansion of
//!   this expression matches Equation 7 up to the `ln(4n/δ)` factor.

/// Equation 7: trials required for retrieval `d` with exclusion cost
/// `F¬[d]` (total cost of the arcs on *other* paths), target accuracy `ε`,
/// confidence `δ`, in a graph with `n` retrievals.
///
/// Returns `0` when `F¬ = 0` (a retrieval whose paths are the whole graph
/// needs no exclusion budget — its estimate cannot change any other
/// path's relative order).
///
/// # Panics
/// Panics unless `ε > 0`, `δ ∈ (0,1)`, `n ≥ 1`, and `F¬ ≥ 0`.
///
/// # Examples
/// ```
/// // Loose but concrete: 2 retrievals, F¬ = 2, ε = 1, δ = 0.1
/// let m = qpl_stats::sample::theorem2_samples(2.0, 1.0, 0.1, 2);
/// assert_eq!(m, (2.0f64 * 16.0 * (40.0f64).ln()).ceil() as u64);
/// ```
pub fn theorem2_samples(f_not: f64, epsilon: f64, delta: f64, n: usize) -> u64 {
    validate(f_not, epsilon, delta, n);
    if f_not == 0.0 {
        return 0;
    }
    let ratio = n as f64 * f_not / epsilon;
    checked_ceil(2.0 * ratio * ratio * (2.0 * n as f64 / delta).ln(), "theorem2_samples")
}

/// Equation 8: contexts on which the adaptive query processor must
/// *attempt to reach* experiment `e` (Definition 1), accounting for the
/// possibility that `e` is rarely or never reachable.
///
/// Returns `0` when `F¬ = 0`.
///
/// # Panics
/// Panics unless `ε > 0`, `δ ∈ (0,1)`, `n ≥ 1`, and `F¬ ≥ 0`.
pub fn theorem3_attempts(f_not: f64, epsilon: f64, delta: f64, n: usize) -> u64 {
    validate(f_not, epsilon, delta, n);
    if f_not == 0.0 {
        return 0;
    }
    // When ε/(n·F¬) underflows, `inner` rounds to 0 and the requirement
    // diverges; checked_ceil turns that into an explicit panic rather
    // than a silently saturated u64::MAX.
    let inner = (2.0 * epsilon / (n as f64 * f_not) + 1.0).sqrt() - 1.0;
    checked_ceil(2.0 / (inner * inner) * (4.0 * n as f64 / delta).ln(), "theorem3_attempts")
}

/// Footnote 11's leading asymptotic term for Equation 8:
/// `2·(n·F¬/ε)²·ln(4n/δ)`. As `n → ∞` (equivalently as `ε/(n·F¬) → 0`)
/// the exact Equation 8 approaches this value; experiment E8 verifies the
/// convergence numerically.
pub fn theorem3_asymptotic(f_not: f64, epsilon: f64, delta: f64, n: usize) -> f64 {
    validate(f_not, epsilon, delta, n);
    if f_not == 0.0 {
        return 0.0;
    }
    let ratio = n as f64 * f_not / epsilon;
    2.0 * ratio * ratio * (4.0 * n as f64 / delta).ln()
}

fn validate(f_not: f64, epsilon: f64, delta: f64, n: usize) {
    assert!(
        f_not.is_finite() && f_not >= 0.0,
        "F_not must be finite and non-negative (got {f_not})"
    );
    assert!(
        epsilon.is_finite() && epsilon > 0.0,
        "epsilon must be finite and positive (got {epsilon})"
    );
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1) (got {delta})");
    assert!(n >= 1, "need at least one experiment");
}

/// Ceiling-convert a sample requirement to `u64`, panicking with a clear
/// message when the requirement is non-finite or too large — previously
/// the bare `as u64` cast saturated to `u64::MAX` silently.
fn checked_ceil(m: f64, what: &str) -> u64 {
    assert!(
        m.is_finite() && m.ceil() < u64::MAX as f64,
        "{what}: required sample count {m:e} overflows u64 (inputs too extreme)"
    );
    m.ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation7_monotone_in_parameters() {
        let base = theorem2_samples(2.0, 0.5, 0.1, 4);
        assert!(theorem2_samples(4.0, 0.5, 0.1, 4) > base, "more F_not, more samples");
        assert!(theorem2_samples(2.0, 0.25, 0.1, 4) > base, "tighter eps, more samples");
        assert!(theorem2_samples(2.0, 0.5, 0.01, 4) > base, "tighter delta, more samples");
        assert!(theorem2_samples(2.0, 0.5, 0.1, 8) > base, "more retrievals, more samples");
    }

    #[test]
    fn equation7_zero_exclusion_cost_needs_no_samples() {
        assert_eq!(theorem2_samples(0.0, 0.5, 0.1, 4), 0);
    }

    #[test]
    fn equation7_paper_scale_example() {
        // For the G_A graph: n = 2 retrievals, F¬[D_p] = f(R_g)+f(D_g) = 2.
        // With ε = 0.5, δ = 0.05: m = ⌈2·(2·2/0.5)²·ln(4/0.05)⌉ = ⌈128·ln 80⌉.
        let m = theorem2_samples(2.0, 0.5, 0.05, 2);
        assert_eq!(m, (128.0 * 80.0f64.ln()).ceil() as u64);
    }

    #[test]
    fn equation8_exceeds_equation7_scale_factor() {
        // Equation 8 uses ln(4n/δ) vs Equation 7's ln(2n/δ); for small
        // ε/(nF¬) the sqrt-expansion makes m' slightly larger than the
        // asymptotic term, which itself exceeds Equation 7.
        let (f, e, d, n) = (3.0, 0.01, 0.05, 6);
        let m7 = theorem2_samples(f, e, d, n);
        let m8 = theorem3_attempts(f, e, d, n);
        assert!(m8 > m7, "m'={m8} should exceed m={m7}");
    }

    #[test]
    fn footnote11_asymptotic_converges() {
        // As ε/(n·F¬) → 0, exact/asymptotic → 1.
        let (f, d) = (2.0, 0.1);
        let mut prev_ratio_err = f64::INFINITY;
        for &eps in &[1.0, 0.1, 0.01, 0.001] {
            let exact = theorem3_attempts(f, eps, d, 4) as f64;
            let asym = theorem3_asymptotic(f, eps, d, 4);
            let err = (exact / asym - 1.0).abs();
            assert!(err < prev_ratio_err + 1e-9, "convergence must improve");
            prev_ratio_err = err;
        }
        assert!(prev_ratio_err < 0.01, "final relative error {prev_ratio_err}");
    }

    #[test]
    fn equation8_monotone_in_f_not() {
        let a = theorem3_attempts(1.0, 0.5, 0.1, 4);
        let b = theorem3_attempts(2.0, 0.5, 0.1, 4);
        assert!(b > a);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_zero_epsilon() {
        theorem2_samples(1.0, 0.0, 0.1, 2);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        theorem3_attempts(1.0, 0.5, 1.5, 2);
    }

    #[test]
    #[should_panic(expected = "F_not must be finite")]
    fn rejects_nan_f_not() {
        theorem2_samples(f64::NAN, 0.5, 0.1, 2);
    }

    #[test]
    #[should_panic(expected = "epsilon must be finite")]
    fn rejects_infinite_epsilon() {
        theorem2_samples(1.0, f64::INFINITY, 0.1, 2);
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn equation7_panics_instead_of_saturating() {
        // n·F¬/ε ≈ 1e300 squared overflows f64; the old cast silently
        // returned u64::MAX.
        theorem2_samples(1e300, 1e-2, 0.1, 2);
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn equation8_panics_when_inner_term_underflows() {
        // 2ε/(n·F¬) < 2⁻⁵³ rounds `sqrt(1 + x) − 1` to exactly 0.
        theorem3_attempts(1e20, 1e-4, 0.1, 4);
    }
}
