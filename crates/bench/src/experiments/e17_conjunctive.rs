//! E17 — Note 4 end to end: conjunctive rules, and-or compilation, and
//! learning over hyper-arc orders.
//!
//! The paper defers conjunctive-body strategy spaces to [GO91,
//! Appendix A] but requires the framework to extend (Note 4). This
//! experiment compiles a conjunctive Datalog knowledge base to an and-or
//! graph, classifies real queries into hyper-arc contexts, and lets the
//! and-or hill-climber reorder both the root's alternatives and the
//! goals' sub-alternatives — verified against the brute-force optimal
//! ordering.

use crate::report::{fm, Report};
use qpl_core::pib_andor::AndOrPib;
use qpl_datalog::parser::parse_query;
use qpl_graph::andor_compile::compile_andor;
use qpl_graph::hypergraph::{brute_force_optimal, AndOrContext, AndOrStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KB: &str = "eligible(X) :- enrolled(X, C), paid(X, T).\n\
                  eligible(X) :- scholarship(X).\n\
                  enrolled(s1, cs). paid(s1, fall).\n\
                  enrolled(s2, math). paid(s2, fall).\n\
                  enrolled(s3, ee).\n\
                  scholarship(s4). scholarship(s5). scholarship(s6). scholarship(s7).";

/// Runs E17 and returns the report.
pub fn run(seed: u64) -> Report {
    let mut r = Report::new("E17: Note 4 — conjunctive rules compiled and learned");

    let mut table = qpl_datalog::SymbolTable::new();
    let program = qpl_datalog::parser::parse_program(KB, &mut table).expect("KB parses");
    let form =
        qpl_datalog::parser::parse_query_form("eligible(b)", &mut table).expect("form parses");
    let compiled = compile_andor(&program.rules, &form, &table, 32).expect("KB compiles");
    let g = compiled.graph.clone();
    r.note(format!(
        "and-or graph: {} goals, {} hyper-arcs (1 conjunction of 2 literals, 1 disjunct)",
        g.goal_count(),
        g.arc_count()
    ));

    // The population: scholarship students dominate, so the scholarship
    // disjunct should be tried before the enrol∧paid conjunction.
    let people = ["s1", "s2", "s3", "s4", "s5", "s6", "s7", "ghost"];
    let weights = [0.05, 0.05, 0.05, 0.2, 0.2, 0.2, 0.2, 0.05];
    let contexts: Vec<(AndOrContext, f64)> = people
        .iter()
        .zip(weights)
        .map(|(p, w)| {
            let q = parse_query(&format!("eligible({p})"), &mut table).expect("parses");
            (compiled.classify(&q, &program.facts).expect("valid"), w)
        })
        .collect();
    let total_w: f64 = weights.iter().sum();
    let expected_cost = |s: &AndOrStrategy| -> f64 {
        contexts
            .iter()
            .map(|(ctx, w)| w * qpl_graph::hypergraph::execute(&g, s, ctx).cost)
            .sum::<f64>()
            / total_w
    };

    let initial = AndOrStrategy::left_to_right(&g); // conjunction first
    let c_init = expected_cost(&initial);
    let mut pib = AndOrPib::new(&g, initial, 0.05);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..20_000 {
        // Draw a person by weight.
        let u: f64 = rng.gen::<f64>() * total_w;
        let mut acc = 0.0;
        let mut pick = 0;
        for (i, w) in weights.iter().enumerate() {
            acc += w;
            if u < acc {
                pick = i;
                break;
            }
        }
        pib.observe(&g, &contexts[pick].0);
    }
    let c_learned = expected_cost(pib.strategy());

    // Brute-force optimum over all per-goal orderings, using the same
    // finite context mix (via an exact per-context evaluation).
    let mut best = f64::INFINITY;
    {
        // Orders only matter at the root (2 arcs); goals below have a
        // single arc each — enumerate root orders.
        let root = g.root();
        let arcs = g.outgoing(root).to_vec();
        for perm in [vec![arcs[0], arcs[1]], vec![arcs[1], arcs[0]]] {
            let mut orders: Vec<Vec<_>> = (0..g.goal_count())
                .map(|i| g.outgoing(qpl_graph::hypergraph::GoalId(i as u32)).to_vec())
                .collect();
            orders[root.0 as usize] = perm;
            let s = AndOrStrategy::from_orders(&g, orders).expect("valid");
            best = best.min(expected_cost(&s));
        }
    }

    r.table(
        "expected probes per query (scholarship-heavy population)",
        &["strategy", "E[cost]"],
        vec![
            vec!["conjunction first (left-to-right)".into(), fm(c_init, 3)],
            vec![format!("learned ({} climb(s))", pib.climbs().len()), fm(c_learned, 3)],
            vec!["brute-force optimum".into(), fm(best, 3)],
        ],
    );

    // Cross-check the hypergraph model against an independent-arc model:
    // uniform synthetic probabilities, learned vs brute force.
    let mut gen = StdRng::seed_from_u64(seed + 1);
    let probs: Vec<f64> = g.arc_ids().map(|_| gen.gen_range(0.2..0.9)).collect();
    let model = qpl_graph::hypergraph::AndOrModel::new(&g, probs).expect("valid");
    let mut pib2 = AndOrPib::new(&g, AndOrStrategy::left_to_right(&g), 0.05);
    for _ in 0..60_000 {
        let ctx = model.sample(&mut gen);
        pib2.observe(&g, &ctx);
    }
    let c2 = model.expected_cost(&g, pib2.strategy());
    let (_, c2_opt) = brute_force_optimal(&g, &model, 100_000);
    r.table(
        "synthetic independent model on the same graph",
        &["quantity", "value"],
        vec![
            vec!["learned C[Θ]".into(), fm(c2, 4)],
            vec!["brute-force optimum".into(), fm(c2_opt, 4)],
        ],
    );

    let ok = c_learned < c_init && (c_learned - best).abs() < 1e-9 && c2 <= c2_opt + 0.05;
    r.set_verdict(if ok {
        "REPRODUCED (conjunctions compile, classify, and learn; optimum reached)"
    } else {
        "MISMATCH"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e17_reproduces() {
        let r = super::run(1717);
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
