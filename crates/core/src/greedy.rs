//! A statistics-free greedy ordering baseline (janus-datalog style).
//!
//! "When Statistics Are Unnecessary" argues that a Datalog planner can
//! order clauses well with *zero* cardinality statistics, using only
//! what is visible in the program text: which arguments are bound by
//! the query (symbol connectivity) and which are pinned to constants
//! (visible selectivity) — planning in microseconds instead of
//! maintaining histograms. [`GreedyHeuristic`] is that idea transplanted
//! onto the paper's inference graphs: it orders each node's child arcs
//! by the *visible constraint density* of their subtrees and derives the
//! depth-first strategy of that ordering.
//!
//! Like [`SmithHeuristic`](crate::SmithHeuristic) it is a baseline the
//! learned strategies (PIB/PAO) are measured against — but where Smith
//! needs the database's fact counts (statistics that can mislead, see
//! E2), greedy needs nothing beyond the compiled graph, so its plan is
//! ready before the first query arrives and never goes stale. The
//! resulting [`Strategy`] lowers through the same `StrategyProgram`
//! path as every other strategy, so all four contenders execute on the
//! bit-parallel batch executor. `bench_fourway` measures where the
//! learned strategies beat it (adversarial query mixes) and where they
//! cannot (mixes whose selectivity is fully visible in the rules).

use qpl_graph::compile::{ArcBinding, CompiledGraph, PatternTerm};
use qpl_graph::graph::ArcId;
use qpl_graph::strategy::Strategy;
use qpl_graph::GraphError;
use qpl_obs::{names, MetricsSink};
use std::time::Instant;

/// Weight of a visibly-pinned position (a pattern constant or a guard):
/// the strongest statistics-free evidence that a branch is selective.
const W_CONST: u64 = 2;
/// Weight of a query-connected position (a `QueryArg` pattern slot):
/// the branch probes with the caller's own binding.
const W_CONNECTED: u64 = 1;

/// The statistics-free greedy orderer and the strategy it induces.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyHeuristic;

impl GreedyHeuristic {
    /// Visible-constraint score of one arc, from its binding alone.
    fn arc_score(compiled: &CompiledGraph, a: ArcId) -> u64 {
        match compiled.binding(a) {
            ArcBinding::Reduction { guards, .. } => W_CONST * guards.len() as u64,
            ArcBinding::Retrieval { pattern, guards, .. } => {
                let consts =
                    pattern.iter().filter(|t| matches!(t, PatternTerm::Const(_))).count() as u64;
                let connected =
                    pattern.iter().filter(|t| matches!(t, PatternTerm::QueryArg(_))).count() as u64;
                W_CONST * (consts + guards.len() as u64) + W_CONNECTED * connected
            }
        }
    }

    /// `(score, size)` summed over the subtree hanging off arc `a`.
    fn subtree(compiled: &CompiledGraph, a: ArcId) -> (u64, u64) {
        let mut score = Self::arc_score(compiled, a);
        let mut size = 1u64;
        for &child in compiled.graph.children(compiled.graph.arc(a).to) {
            let (s, n) = Self::subtree(compiled, child);
            score += s;
            size += n;
        }
        (score, size)
    }

    /// Per-node child orders: descending visible-constraint density
    /// (score per arc), ties to the smaller subtree (fail or finish
    /// sooner), then to source order — fully deterministic.
    pub fn orders(compiled: &CompiledGraph) -> Vec<Vec<ArcId>> {
        let g = &compiled.graph;
        g.node_ids()
            .map(|n| {
                let mut kids: Vec<(ArcId, u64, u64)> = g
                    .children(n)
                    .iter()
                    .map(|&a| {
                        let (score, size) = Self::subtree(compiled, a);
                        (a, score, size)
                    })
                    .collect();
                // Density compare without floats: s1/n1 > s2/n2 ⟺
                // s1·n2 > s2·n1 (sizes are ≥ 1).
                kids.sort_by(|&(a1, s1, n1), &(a2, s2, n2)| {
                    (s2 * n1).cmp(&(s1 * n2)).then(n1.cmp(&n2)).then(a1.cmp(&a2))
                });
                kids.into_iter().map(|(a, _, _)| a).collect()
            })
            .collect()
    }

    /// The depth-first strategy of the greedy child orders.
    ///
    /// # Errors
    /// Structural [`GraphError`]s from strategy construction (non-tree
    /// graph); the orders themselves are always valid permutations.
    pub fn strategy(compiled: &CompiledGraph) -> Result<Strategy, GraphError> {
        Strategy::dfs_from_orders(&compiled.graph, &Self::orders(compiled))
    }

    /// [`GreedyHeuristic::strategy`], reporting planning wall-clock to
    /// `sink` as the [`names::plan::GREEDY_MICROS`] counter.
    ///
    /// # Errors
    /// Same as [`GreedyHeuristic::strategy`].
    pub fn strategy_observed(
        compiled: &CompiledGraph,
        sink: &mut dyn MetricsSink,
    ) -> Result<Strategy, GraphError> {
        let t0 = Instant::now();
        let result = Self::strategy(compiled);
        // Sub-microsecond plans still count as one, so the counter
        // doubles as a number-of-plans floor.
        sink.counter(names::plan::GREEDY_MICROS, (t0.elapsed().as_micros() as u64).max(1));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_datalog::parser::{parse_program, parse_query_form};
    use qpl_datalog::SymbolTable;
    use qpl_graph::compile::{compile, CompileOptions};
    use qpl_obs::MemorySink;

    fn compile_src(rules: &str, form: &str) -> CompiledGraph {
        let mut t = SymbolTable::new();
        let p = parse_program(rules, &mut t).unwrap();
        let qf = parse_query_form(form, &mut t).unwrap();
        compile(&p.rules, &qf, &t, &CompileOptions::default()).unwrap()
    }

    #[test]
    fn visible_constant_branch_ranks_first() {
        // Written selective-last: the r-branch probes with a visible
        // constant (`loc`), the s-branch with an existential — greedy
        // must reorder r ahead of s without any statistics.
        let cg = compile_src("q(X) :- s(X, Y).\nq(X) :- r(X, loc).", "q(b)");
        let s = GreedyHeuristic::strategy(&cg).unwrap();
        let first_retrieval = s
            .arcs()
            .iter()
            .find(|&&a| cg.graph.arc(a).kind == qpl_graph::ArcKind::Retrieval)
            .copied()
            .unwrap();
        assert!(
            cg.graph.arc(first_retrieval).label.contains('r'),
            "constant-pinned branch first, got {}",
            cg.graph.arc(first_retrieval).label
        );
    }

    #[test]
    fn guarded_reduction_outranks_unguarded() {
        // grad(fred) :- admitted(fred, Y) compiles to a guarded
        // reduction (ArgEqConst) — visibly the most selective branch.
        let cg = compile_src(
            "instructor(X) :- grad(X).\n\
             grad(X) :- enrolled(X).\n\
             grad(fred) :- admitted(fred, Y).",
            "instructor(b)",
        );
        let orders = GreedyHeuristic::orders(&cg);
        // Find the grad node: the one with two children (enrolled-rule
        // and admitted-rule reductions).
        let g = &cg.graph;
        let grad_node = g.node_ids().find(|&n| g.children(n).len() == 2 && n != g.root()).unwrap();
        let first = orders[grad_node.index()][0];
        let guarded = matches!(
            cg.binding(first),
            ArcBinding::Reduction { guards, .. } if !guards.is_empty()
        );
        assert!(guarded, "guarded reduction must come first at the grad node");
    }

    #[test]
    fn plain_disjunction_keeps_source_order() {
        // Figure 1: both branches look identical to the text — greedy
        // must fall back to source order (and thus match left-to-right).
        let cg =
            compile_src("instructor(X) :- prof(X).\ninstructor(X) :- grad(X).", "instructor(b)");
        let s = GreedyHeuristic::strategy(&cg).unwrap();
        assert_eq!(s.arcs(), Strategy::left_to_right(&cg.graph).arcs());
    }

    #[test]
    fn observed_planning_emits_micros_and_is_fast() {
        let cg = compile_src(
            "owns(X, Y) :- owns_home(X, Y).\n\
             owns(X, Y) :- owns_car(X, Y).\n\
             owns(X, Y) :- owns_stock(X, Y).\n\
             owns(X, Y) :- owns_boat(X, Y).",
            "owns(b,f)",
        );
        let mut sink = MemorySink::new();
        let t0 = std::time::Instant::now();
        let s = GreedyHeuristic::strategy_observed(&cg, &mut sink).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(s.arcs().len(), cg.graph.arc_count());
        assert!(
            sink.counter_total(names::plan::GREEDY_MICROS) >= 1,
            "planning micros counter must be emitted"
        );
        assert!(elapsed.as_millis() < 1, "greedy planning must stay under 1 ms: {elapsed:?}");
    }
}
