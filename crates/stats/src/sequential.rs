//! Sequential hypothesis-testing schedules (Section 3.2).
//!
//! PIB performs an unbounded series of statistical tests — one per
//! candidate transformation per batch of samples — yet must keep the
//! *total* probability of ever accepting a bad move below `δ` (Theorem 1).
//! A fixed per-test confidence cannot achieve this: `k` tests at level `δ`
//! only bound the error by `k·δ`. The paper's fix is to spend the error
//! budget as a convergent series: the `i`-th test runs at level
//!
//! ```text
//! δᵢ = δ · 6 / (π² · i²)        so that    Σᵢ δᵢ = δ
//! ```
//!
//! (using `Σ 1/i² = π²/6`). [`SequentialSchedule`] tracks the global test
//! counter `i` and hands out the per-test budgets; it also supports the
//! union-bound split over `k` simultaneous neighbours used in Equation 5
//! (`ln(k/δ)` instead of `ln(1/δ)`).

/// The error-budget schedule `δᵢ = 6δ/(π²·i²)` with a running test counter.
///
/// PIB (Figure 3 of the paper) increments the counter by
/// `|T(Θⱼ)|` per observed context — one test per candidate neighbour —
/// and uses the *current* counter value in Equation 6's
/// `ln(i²π²/(6δ))` term. This type reproduces exactly that bookkeeping.
///
/// # Examples
/// ```
/// use qpl_stats::SequentialSchedule;
/// let mut s = SequentialSchedule::new(0.1);
/// let d1 = s.next_budget();      // 6·0.1/π² ≈ 0.0608
/// let d2 = s.next_budget();      // d1 / 4
/// assert!((d2 - d1 / 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SequentialSchedule {
    delta: f64,
    tests_used: u64,
}

impl SequentialSchedule {
    /// Creates a schedule with total error budget `δ`.
    ///
    /// # Panics
    /// Panics unless `δ ∈ (0, 1)`.
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        Self { delta, tests_used: 0 }
    }

    /// Rebuilds a schedule mid-stream from persisted state, so a
    /// restarted learner keeps spending the *same* Theorem-1 error
    /// budget instead of resetting `i` (which would over-spend δ).
    ///
    /// # Panics
    /// Panics unless `δ ∈ (0, 1)`.
    pub fn restore(delta: f64, tests_used: u64) -> Self {
        let mut s = Self::new(delta);
        s.tests_used = tests_used;
        s
    }

    /// Total error budget `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of test budgets handed out so far.
    pub fn tests_used(&self) -> u64 {
        self.tests_used
    }

    /// The budget that *would* be used for test index `i` (1-based):
    /// `δᵢ = 6δ/(π²·i²)`.
    pub fn budget_for(&self, i: u64) -> f64 {
        assert!(i >= 1, "test indices are 1-based");
        6.0 * self.delta / (std::f64::consts::PI.powi(2) * (i as f64) * (i as f64))
    }

    /// Consumes the next test index and returns its budget `δᵢ`.
    pub fn next_budget(&mut self) -> f64 {
        self.tests_used += 1;
        self.budget_for(self.tests_used)
    }

    /// Advances the counter by `k` tests at once (PIB charges one test per
    /// candidate neighbour per context) and returns the budget at the new
    /// counter value — the `δᵢ` that Equation 6 plugs into
    /// `ln(i²π²/(6δ))`.
    pub fn advance(&mut self, k: u64) -> f64 {
        self.tests_used += k;
        self.budget_for(self.tests_used.max(1))
    }

    /// Sum of all budgets handed out so far; never exceeds `δ`.
    pub fn spent(&self) -> f64 {
        (1..=self.tests_used).map(|i| self.budget_for(i)).sum()
    }
}

/// Splits an error budget across `k` simultaneous hypotheses by union
/// bound: each hypothesis is tested at level `δ/k`, which appears in the
/// paper's Equation 5 as the `ln(k/δ)` term.
///
/// # Panics
/// Panics if `k == 0` or `δ ∉ (0,1)`.
pub fn union_split(delta: f64, k: usize) -> f64 {
    assert!(k > 0, "need at least one hypothesis");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    delta / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_sum_to_delta_in_the_limit() {
        let s = SequentialSchedule::new(0.25);
        let partial: f64 = (1..=200_000u64).map(|i| s.budget_for(i)).sum();
        assert!(partial < 0.25, "partial sums must stay below delta");
        assert!(partial > 0.25 * 0.99999, "partial sum {partial} should approach 0.25");
    }

    #[test]
    fn first_budget_is_six_over_pi_squared() {
        let mut s = SequentialSchedule::new(1e-2);
        let d1 = s.next_budget();
        assert!((d1 - 6.0 * 1e-2 / std::f64::consts::PI.powi(2)).abs() < 1e-15);
    }

    #[test]
    fn budgets_strictly_decrease() {
        let mut s = SequentialSchedule::new(0.5);
        let mut prev = f64::INFINITY;
        for _ in 0..50 {
            let b = s.next_budget();
            assert!(b < prev);
            prev = b;
        }
    }

    #[test]
    fn advance_matches_manual_stepping() {
        let mut a = SequentialSchedule::new(0.1);
        let mut b = SequentialSchedule::new(0.1);
        let x = a.advance(5);
        let mut y = 0.0;
        for _ in 0..5 {
            y = b.next_budget();
        }
        assert_eq!(a.tests_used(), b.tests_used());
        assert!((x - y).abs() < 1e-15);
    }

    #[test]
    fn restore_continues_the_budget_stream() {
        let mut live = SequentialSchedule::new(0.1);
        live.advance(17);
        let mut restored = SequentialSchedule::restore(live.delta(), live.tests_used());
        assert_eq!(restored.tests_used(), live.tests_used());
        assert_eq!(restored.advance(3).to_bits(), live.advance(3).to_bits());
    }

    #[test]
    fn spent_is_below_delta() {
        let mut s = SequentialSchedule::new(0.05);
        for _ in 0..1000 {
            s.next_budget();
        }
        assert!(s.spent() < 0.05);
    }

    #[test]
    fn union_split_divides_evenly() {
        assert!((union_split(0.1, 4) - 0.025).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        SequentialSchedule::new(1.0);
    }
}
