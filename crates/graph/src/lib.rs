//! # qpl-graph — inference graphs, strategies, contexts, and costs
//!
//! The cost model of Greiner (PODS'92), Section 2: an inference graph
//! `G = ⟨N, A, S, f⟩` describes how a query reduces through rules to
//! attempted database retrievals; a *strategy* `Θ` orders the arcs; a
//! *context* `I` determines which arcs are blocked; and the expected cost
//! `C[Θ] = E_I[c(Θ, I)]` is what the learning algorithms in `qpl-core`
//! minimize.
//!
//! * [`graph`] — the graph arena, the derived cost functions `f*`, `F¬`,
//!   `Π(e)` (Note 5), and tree-shape (`AOT`) classification.
//! * [`strategy`] — path-form strategies (Note 3), depth-first
//!   construction, exhaustive enumeration.
//! * [`context`] — blocked-arc context classes (Note 2) and the
//!   satisficing execution semantics `c(Θ, I)` with full traces.
//! * [`expected`] — finite and independent-arc context distributions with
//!   *exact* expected-cost computation.
//! * [`incremental`] — cached per-node cost state for depth-first
//!   strategies with O(depth · branching) sibling-swap candidate
//!   evaluation (the inner loop of hill-climbing over `T(Θ)`).
//! * [`pessimistic`] — the "assume unexplored arcs are blocked"
//!   completion underlying PIB's `Δ̃` under-estimates.
//! * [`program`] — strategies compiled to flat jump-threaded instruction
//!   arrays: single-context execution as pure index arithmetic.
//! * [`batch`] — bit-parallel execution of a compiled program over 64
//!   contexts at once (one blocked-bitplane per arc).
//! * [`compile`] — compilation of a Datalog rule base + query form into
//!   an inference graph, with the per-arc bindings the engine needs to
//!   decide blocked-status against a real database.
//! * [`hypergraph`] — the Note 4 extension to conjunctive rule bodies
//!   (and-or trees), with [`andor_compile`] turning conjunctive Datalog
//!   rules into bound and-or graphs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod andor_compile;
pub mod batch;
pub mod compile;
pub mod context;
pub mod error;
pub mod expected;
pub mod graph;
pub mod hypergraph;
pub mod incremental;
pub mod pessimistic;
pub mod program;
pub mod strategy;
#[cfg(test)]
pub(crate) mod testgen;

pub use batch::{
    execute_batch, execute_batch_observed, lanes_from, tail_mask, try_execute_batch,
    width_for_lanes, BatchRun, ContextBatch, LaneMask, LANES, MAX_LANES, MAX_WIDTH,
};
pub use context::{ArcOutcome, Context, RunOutcome, RunScratch, Trace};
pub use error::GraphError;
pub use expected::{ContextDistribution, FiniteDistribution, IndependentModel};
pub use graph::{ArcData, ArcId, ArcKind, GraphBuilder, InferenceGraph, NodeData, NodeId};
pub use incremental::CostEvaluator;
pub use pessimistic::pessimistic_completion;
pub use program::{
    execute_program_into, execute_program_partial_into, program_cost_into, Instr, StrategyProgram,
    NO_INDEX,
};
pub use strategy::Strategy;
