//! PAO — the probably-approximately-optimal learner (Section 4).
//!
//! PAO's pipeline: compute the required trial counts (Equation 7 for
//! retrievals, Equation 8 for general experiments), watch an adaptive
//! query processor until every counter is satisfied, form the frequency
//! vector `p̂`, and hand it to `Υ_AOT`. Theorems 2 and 3 guarantee
//! `C[Θ_pao] ≤ C[Θ_opt] + ε` with probability `≥ 1 − δ`.
//!
//! The literal Equation 7/8 counts are enormous for small `ε` — they are
//! worst-case Hoeffding bounds. [`PaoConfig::with_sample_cap`] clamps
//! them for experimentation (the `ε`-guarantee then degrades gracefully;
//! experiment E7 measures actual accuracy against the theoretical
//! requirement).

use crate::upsilon::optimal_strategy;
use qpl_engine::adaptive::AdaptiveQp;
use qpl_graph::context::{Context, Trace};
use qpl_graph::graph::{ArcId, InferenceGraph};
use qpl_graph::strategy::Strategy;
use qpl_graph::{GraphError, IndependentModel};
use qpl_stats::sample::{theorem2_samples, theorem3_attempts};

/// Which theorem's sampling discipline to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaoMode {
    /// Theorem 2: sample each retrieval `m(dᵢ)` times (assumes every
    /// retrieval is reachable).
    Theorem2,
    /// Theorem 3: *attempt to reach* each experiment `m'(eᵢ)` times
    /// (handles unreachable experiments via `ρ(eᵢ)`).
    Theorem3,
}

/// PAO configuration.
#[derive(Debug, Clone, Copy)]
pub struct PaoConfig {
    /// Target sub-optimality `ε`.
    pub epsilon: f64,
    /// Confidence parameter `δ`.
    pub delta: f64,
    /// Sampling discipline.
    pub mode: PaoMode,
    /// Optional clamp on per-target trial counts (practical knob; `None`
    /// uses the exact theorem values).
    pub sample_cap: Option<u64>,
}

impl PaoConfig {
    /// Theorem-2 configuration with exact sample counts.
    pub fn theorem2(epsilon: f64, delta: f64) -> Self {
        Self { epsilon, delta, mode: PaoMode::Theorem2, sample_cap: None }
    }

    /// Theorem-3 configuration with exact sample counts.
    pub fn theorem3(epsilon: f64, delta: f64) -> Self {
        Self { epsilon, delta, mode: PaoMode::Theorem3, sample_cap: None }
    }

    /// Clamps each target's required trials to at most `cap`.
    pub fn with_sample_cap(mut self, cap: u64) -> Self {
        self.sample_cap = Some(cap);
        self
    }
}

/// The PAO learner: sampling phase driven by `QP^A`, then `Υ`.
#[derive(Debug, Clone)]
pub struct Pao {
    config: PaoConfig,
    qp: AdaptiveQp,
    targets: Vec<ArcId>,
}

impl Pao {
    /// Creates a PAO learner for `g`. In Theorem-2 mode the targets are
    /// the retrieval arcs; in Theorem-3 mode every arc is treated as a
    /// potential experiment (pass an explicit list via
    /// [`Pao::with_experiments`] to restrict).
    ///
    /// # Errors
    /// [`GraphError::NotTree`] for non-tree graphs or
    /// [`GraphError::BadProbability`] for invalid `ε`/`δ`.
    pub fn new(g: &InferenceGraph, config: PaoConfig) -> Result<Self, GraphError> {
        match config.mode {
            PaoMode::Theorem2 => {
                let targets: Vec<ArcId> = g.retrievals().collect();
                Self::build(g, config, targets)
            }
            PaoMode::Theorem3 => {
                let targets: Vec<ArcId> = g.arc_ids().collect();
                Self::build(g, config, targets)
            }
        }
    }

    /// Theorem-3 PAO over an explicit experiment set (arcs known to be
    /// deterministic can be omitted; their probability is fixed at 1).
    ///
    /// # Errors
    /// As for [`Pao::new`].
    pub fn with_experiments(
        g: &InferenceGraph,
        config: PaoConfig,
        experiments: Vec<ArcId>,
    ) -> Result<Self, GraphError> {
        Self::build(g, config, experiments)
    }

    fn build(
        g: &InferenceGraph,
        config: PaoConfig,
        targets: Vec<ArcId>,
    ) -> Result<Self, GraphError> {
        if !g.is_tree() {
            return Err(GraphError::NotTree("PAO requires a tree-shaped graph".into()));
        }
        if config.epsilon.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(GraphError::BadProbability(config.epsilon));
        }
        if !(config.delta > 0.0 && config.delta < 1.0) {
            return Err(GraphError::BadProbability(config.delta));
        }
        let n = targets.len().max(1);
        let needed: Vec<u64> = targets
            .iter()
            .map(|&a| {
                let f_not = g.f_not(a);
                let m = match config.mode {
                    PaoMode::Theorem2 => theorem2_samples(f_not, config.epsilon, config.delta, n),
                    PaoMode::Theorem3 => theorem3_attempts(f_not, config.epsilon, config.delta, n),
                };
                match config.sample_cap {
                    Some(cap) => m.min(cap),
                    None => m,
                }
            })
            .collect();
        let qp = AdaptiveQp::for_experiments(targets.iter().copied().zip(needed).collect());
        Ok(Self { config, qp, targets })
    }

    /// The configuration in force.
    pub fn config(&self) -> &PaoConfig {
        &self.config
    }

    /// The per-target required trial counts (`M = ⟨m₁, …, mₙ⟩`).
    pub fn required_samples(&self) -> Vec<(ArcId, u64)> {
        self.qp.stats().iter().map(|s| (s.arc, s.needed)).collect()
    }

    /// The underlying adaptive processor's statistics.
    pub fn stats(&self) -> &[qpl_engine::adaptive::AimStat] {
        self.qp.stats()
    }

    /// Whether the sampling phase is complete.
    pub fn done(&self) -> bool {
        self.qp.done()
    }

    /// Total contexts consumed.
    pub fn runs(&self) -> u64 {
        self.qp.runs()
    }

    /// Feeds one context to the adaptive processor. Returns the trace,
    /// or `None` once sampling is complete.
    pub fn observe(&mut self, g: &InferenceGraph, ctx: &Context) -> Option<Trace> {
        self.qp.observe(g, ctx)
    }

    /// Feeds a whole [`ContextBatch`](qpl_graph::batch::ContextBatch) to
    /// the adaptive processor through the bit-parallel executor —
    /// byte-identical counters (and therefore a byte-identical `p̂` and
    /// final strategy) to feeding the lanes to [`observe`](Self::observe)
    /// one at a time. Returns the number of lanes consumed; sampling can
    /// complete mid-batch, leaving the remaining lanes untouched.
    pub fn observe_batch(
        &mut self,
        g: &InferenceGraph,
        batch: &qpl_graph::batch::ContextBatch,
    ) -> u64 {
        self.qp.observe_batch(g, batch)
    }

    /// Emits the sampling plan and its progress into a
    /// [`MetricsSink`](qpl_obs::MetricsSink): `core.pao.targets` and
    /// `core.pao.samples_required` counters, one `core.pao.allocation`
    /// event per experiment arc with its Equation 7/8 trial count, and
    /// the underlying `QP^A`'s `engine.adaptive.*` telemetry.
    pub fn emit_to(&self, sink: &mut dyn qpl_obs::MetricsSink) {
        sink.counter("core.pao.targets", self.targets.len() as u64);
        let required = self.required_samples();
        sink.counter("core.pao.samples_required", required.iter().map(|&(_, m)| m).sum());
        if sink.enabled() {
            for (arc, needed) in required {
                sink.event(
                    "core.pao.allocation",
                    &[("arc", f64::from(arc.0)), ("needed", needed as f64)],
                );
            }
        }
        self.qp.emit_to(sink);
    }

    /// The estimated model: targets get their frequency estimates
    /// (`p̂ᵢ = n/k`, or `0.5` when never reached), non-targets stay
    /// deterministic.
    pub fn estimated_model(&self, g: &InferenceGraph) -> IndependentModel {
        let mut model = IndependentModel::uniform(g, 1.0).expect("1.0 is a valid probability");
        for stat in self.qp.stats() {
            // Reductions estimated at exactly 1 stay deterministic so the
            // fast Υ applies; anything else records its estimate.
            model.set_prob(stat.arc, stat.p_hat()).expect("frequency estimates are in [0,1]");
        }
        model
    }

    /// Finishes: `Θ_pao = Υ_AOT(G, p̂)`.
    ///
    /// # Errors
    /// [`GraphError::InvalidStrategy`] if sampling is not complete, or an
    /// optimizer error for intractable cases.
    pub fn finish(&self, g: &InferenceGraph) -> Result<(Strategy, IndependentModel), GraphError> {
        if !self.done() {
            return Err(GraphError::InvalidStrategy(format!(
                "sampling incomplete: {:?} of {} targets satisfied",
                self.qp.stats().iter().filter(|s| s.done()).count(),
                self.targets.len()
            )));
        }
        let model = self.estimated_model(g);
        let (strategy, _) = optimal_strategy(g, &model, 1_000_000)?;
        Ok((strategy, model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_graph::expected::ContextDistribution;
    use qpl_graph::graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g_a() -> InferenceGraph {
        let mut b = GraphBuilder::new("instructor(κ)");
        let root = b.root();
        let (_, prof) = b.reduction(root, "R_p", 1.0, "prof(κ)");
        b.retrieval(prof, "D_p", 1.0);
        let (_, grad) = b.reduction(root, "R_g", 1.0, "grad(κ)");
        b.retrieval(grad, "D_g", 1.0);
        b.finish().unwrap()
    }

    fn g_b() -> InferenceGraph {
        let mut b = GraphBuilder::new("G(κ)");
        let root = b.root();
        let (_, a) = b.reduction(root, "R_ga", 1.0, "A(κ)");
        b.retrieval(a, "D_a", 1.0);
        let (_, s) = b.reduction(root, "R_gs", 1.0, "S(κ)");
        let (_, bb) = b.reduction(s, "R_sb", 1.0, "B(κ)");
        b.retrieval(bb, "D_b", 1.0);
        let (_, t) = b.reduction(s, "R_st", 1.0, "T(κ)");
        let (_, c) = b.reduction(t, "R_tc", 1.0, "C(κ)");
        b.retrieval(c, "D_c", 1.0);
        let (_, d) = b.reduction(t, "R_td", 1.0, "D(κ)");
        b.retrieval(d, "D_d", 1.0);
        b.finish().unwrap()
    }

    #[test]
    fn end_to_end_on_g_a_finds_optimal() {
        let g = g_a();
        let truth = IndependentModel::from_retrieval_probs(&g, &[0.2, 0.6]).unwrap();
        let mut pao = Pao::new(&g, PaoConfig::theorem2(0.5, 0.1).with_sample_cap(3000)).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        while !pao.done() {
            let ctx = truth.sample(&mut rng);
            pao.observe(&g, &ctx);
        }
        let (strategy, _) = pao.finish(&g).unwrap();
        assert_eq!(strategy.display(&g).to_string(), "⟨R_g D_g R_p D_p⟩", "Θ₂ optimal");
    }

    #[test]
    fn epsilon_guarantee_holds_on_g_b() {
        // With the exact Theorem-2 counts the guarantee is near-certain;
        // with a generous ε the capped version still achieves it here.
        let g = g_b();
        let truth = IndependentModel::from_retrieval_probs(&g, &[0.35, 0.15, 0.55, 0.75]).unwrap();
        let (_, c_opt) = crate::upsilon::optimal_strategy(&g, &truth, 1_000_000).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..10 {
            let mut pao =
                Pao::new(&g, PaoConfig::theorem2(1.0, 0.1).with_sample_cap(2000)).unwrap();
            while !pao.done() {
                let ctx = truth.sample(&mut rng);
                pao.observe(&g, &ctx);
            }
            let (strategy, _) = pao.finish(&g).unwrap();
            let c_pao = truth.expected_cost(&g, &strategy);
            assert!(
                c_pao <= c_opt + 1.0 + 1e-9,
                "trial {trial}: C[Θ_pao]={c_pao} exceeds C[Θ_opt]+ε={}",
                c_opt + 1.0
            );
        }
    }

    #[test]
    fn required_samples_match_equation7() {
        let g = g_a();
        let pao = Pao::new(&g, PaoConfig::theorem2(0.5, 0.1)).unwrap();
        for (arc, m) in pao.required_samples() {
            let expected = theorem2_samples(g.f_not(arc), 0.5, 0.1, 2);
            assert_eq!(m, expected);
        }
    }

    #[test]
    fn theorem3_mode_counts_all_arcs() {
        let g = g_a();
        let pao = Pao::new(&g, PaoConfig::theorem3(0.5, 0.1)).unwrap();
        assert_eq!(pao.required_samples().len(), 4, "reductions are experiments too");
    }

    #[test]
    fn theorem3_handles_unreachable_experiment() {
        // R_p blocked in every context (the grad(fred)-style guard never
        // fires): PAO must still terminate and produce a near-optimal
        // strategy despite never sampling D_p.
        let g = g_a();
        let mut truth = IndependentModel::from_retrieval_probs(&g, &[0.9, 0.4]).unwrap();
        truth.set_prob(g.arc_by_label("R_p").unwrap(), 0.0).unwrap();
        let mut pao = Pao::new(&g, PaoConfig::theorem3(1.0, 0.1).with_sample_cap(2000)).unwrap();
        let mut rng = StdRng::seed_from_u64(43);
        while !pao.done() {
            let ctx = truth.sample(&mut rng);
            pao.observe(&g, &ctx);
        }
        let dp = g.arc_by_label("D_p").unwrap();
        let dp_stat = pao.stats().iter().find(|s| s.arc == dp).unwrap();
        assert_eq!(dp_stat.reached, 0, "D_p is unreachable");
        assert!(dp_stat.attempts >= dp_stat.needed.min(2000));
        let (strategy, model) = pao.finish(&g).unwrap();
        // D_p's estimate defaulted to 0.5; R_p's estimate is ≈ 0.
        assert!((model.prob(dp) - 0.5).abs() < 1e-12);
        assert!(model.prob(g.arc_by_label("R_p").unwrap()) < 0.05);
        // The learned strategy must be near-optimal under the truth.
        let c = truth.expected_cost(&g, &strategy);
        let (_, c_opt) = crate::upsilon::optimal_strategy(&g, &truth, 1_000_000).unwrap();
        assert!(c <= c_opt + 1.0 + 1e-9, "C={c} vs opt={c_opt}");
    }

    #[test]
    fn batched_sampling_yields_identical_final_strategy() {
        // PAO end-to-end, batching on vs off over the same context
        // stream: identical counters, identical p̂, identical Θ_pao.
        let g = g_b();
        let truth = IndependentModel::from_retrieval_probs(&g, &[0.35, 0.15, 0.55, 0.75]).unwrap();
        let cfg = PaoConfig::theorem2(1.0, 0.1).with_sample_cap(500);
        for lanes in [64usize, 128, 512] {
            let mut scalar = Pao::new(&g, cfg).unwrap();
            let mut batched = Pao::new(&g, cfg).unwrap();
            let mut rng = StdRng::seed_from_u64(42);
            while !batched.done() {
                let mut b = qpl_graph::batch::ContextBatch::new(g.arc_count(), lanes);
                let mut ctxs = Vec::with_capacity(lanes);
                for lane in 0..lanes {
                    let ctx = truth.sample(&mut rng);
                    b.set_lane(lane, &ctx);
                    ctxs.push(ctx);
                }
                let consumed = batched.observe_batch(&g, &b);
                for ctx in ctxs.iter().take(consumed as usize) {
                    scalar.observe(&g, ctx);
                }
            }
            assert!(scalar.done(), "plane of {lanes} lanes");
            assert_eq!(scalar.runs(), batched.runs());
            for (a, b) in scalar.stats().iter().zip(batched.stats()) {
                assert_eq!(
                    (a.arc, a.attempts, a.reached, a.successes),
                    (b.arc, b.attempts, b.reached, b.successes)
                );
            }
            let (s_strat, s_model) = scalar.finish(&g).unwrap();
            let (b_strat, b_model) = batched.finish(&g).unwrap();
            assert_eq!(s_strat.arcs(), b_strat.arcs());
            for a in g.arc_ids() {
                assert_eq!(s_model.prob(a).to_bits(), b_model.prob(a).to_bits());
            }
        }
    }

    #[test]
    fn finish_before_done_rejected() {
        let g = g_a();
        let pao = Pao::new(&g, PaoConfig::theorem2(0.5, 0.1)).unwrap();
        assert!(pao.finish(&g).is_err());
    }

    #[test]
    fn bad_parameters_rejected() {
        let g = g_a();
        assert!(Pao::new(&g, PaoConfig::theorem2(0.0, 0.1)).is_err());
        assert!(Pao::new(&g, PaoConfig::theorem2(0.5, 1.0)).is_err());
    }

    #[test]
    fn tighter_epsilon_needs_more_samples() {
        let g = g_a();
        let loose = Pao::new(&g, PaoConfig::theorem2(1.0, 0.1)).unwrap();
        let tight = Pao::new(&g, PaoConfig::theorem2(0.1, 0.1)).unwrap();
        let total = |p: &Pao| p.required_samples().iter().map(|(_, m)| m).sum::<u64>();
        assert!(total(&tight) > total(&loose) * 50, "quadratic growth in 1/ε");
    }
}
