//! Distributions: the `Standard` uniform distribution and range sampling,
//! mirroring `rand 0.8`'s `distributions` / `Uniform` machinery at the API
//! level used by this workspace.

use crate::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution: `[0, 1)` for floats, full range for
/// integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits → uniform on [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )+};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64, u128 => next_u64, i128 => next_u64,
);

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Widening-multiply bounded draw on `[0, n)`; bias is below 2⁻⁶⁴·n,
/// irrelevant at the workspace's range sizes.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R, lo: Self, hi: Self, inclusive: bool,
            ) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                let n = if inclusive { span.checked_add(1) } else { Some(span) };
                match n {
                    Some(0) | None => {
                        // Empty checked above; None means the full u64 range.
                        lo.wrapping_add(rng.next_u64() as $t)
                    }
                    Some(n) => lo.wrapping_add(bounded_u64(rng, n) as $t),
                }
            }
        }
    )+};
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R, lo: Self, hi: Self, inclusive: bool,
            ) -> Self {
                let span = (hi as i64 as u64).wrapping_sub(lo as i64 as u64);
                let n = if inclusive { span.checked_add(1) } else { Some(span) };
                match n {
                    Some(0) | None => lo.wrapping_add(rng.next_u64() as $t),
                    Some(n) => lo.wrapping_add(bounded_u64(rng, n) as $t),
                }
            }
        }
    )+};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + u * (hi - lo)
    }
}

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_between(rng, lo, hi, true)
    }
}
