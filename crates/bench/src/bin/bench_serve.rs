//! Load-tests the `qpl-serve` front door end to end and emits
//! `BENCH_serve.json`.
//!
//! ```text
//! bench_serve [--out BENCH_serve.json] [--threads N] [--rounds N]
//!             [--batch N] [--updates N] [--shards N] [--adapt DELTA]
//!             [--assert-qps N]
//! ```
//!
//! For each shard count in the sweep (default `{1, 2, 4, cores}`;
//! `--shards N` pins a single configuration, e.g. for CI), a real
//! [`Server`] is started on an ephemeral port (layered-KB shape, online
//! PIB adaptation on by default); `--threads` client threads each send
//! `--rounds` batch requests of `--batch` queries over real TCP
//! sockets. Each client rotates the query list by its thread index, so
//! the steering key (first query text) differs per client and jobs
//! spread across shards rather than all hashing to one home replica.
//!
//! Timing is two-window. The **serve window** opens after every client
//! has connected (a barrier) and closes when the last client has its
//! last response line in hand — responses are stored raw during the
//! window and verified afterwards, so `serve_qps` measures the server,
//! not the harness. The **total window** additionally charges
//! connection setup and ground-truth verification — what a cold client
//! actually observes. Both are reported; earlier revisions reported
//! only the total and thereby understated the server.
//!
//! Accounting is strict: every request must come back as either a
//! served `answers` payload (each lane checked against a direct scalar
//! [`QueryProcessor`] run) or an explicit `overloaded` refusal — a
//! dropped request is a benchmark failure, not a footnote. Per-shard
//! served/fill/qps are pulled from the server's own `stats` breakdown.
//! `--assert-qps` gates the best serve-window qps across the sweep for
//! CI.
//!
//! After the timed window, a **mixed query/update phase** sends
//! `--updates` wire-v2 `update` requests (alternating insert/retract
//! of a fact outside every query's dependency footprint) interleaved
//! with full query batches. Each batch must keep answering exactly
//! what the pre-churn scalar ground truth said, every shard's
//! applied-delta counter must equal the rounds sent (replica
//! convergence), and the merged metrics must carry the
//! `serve.kb.delta.applied` and `obs.events_dropped` counters.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::num::NonZeroUsize;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use qpl_engine::QueryProcessor;
use qpl_graph::context::RunScratch;
use qpl_serve::wire::JsonValue;
use qpl_serve::{ServeEngine, Server, ServerConfig};
use qpl_workload::generator::KbParams;

const SEED: u64 = 7;

struct Args {
    out: String,
    threads: usize,
    rounds: usize,
    batch: usize,
    updates: usize,
    shards: Option<usize>,
    adapt: Option<f64>,
    assert_qps: Option<f64>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let get =
        |flag: &str| argv.iter().position(|a| a == flag).and_then(|p| argv.get(p + 1)).cloned();
    Args {
        out: get("--out").unwrap_or_else(|| "BENCH_serve.json".to_string()),
        threads: get("--threads").map_or(8, |v| v.parse().expect("--threads takes a count")),
        rounds: get("--rounds").map_or(200, |v| v.parse().expect("--rounds takes a count")),
        batch: get("--batch").map_or(32, |v| v.parse().expect("--batch takes a lane count")),
        updates: get("--updates").map_or(16, |v| v.parse().expect("--updates takes a count")),
        shards: get("--shards").map(|v| v.parse().expect("--shards takes a count")),
        adapt: match get("--adapt") {
            Some(v) if v == "off" => None,
            Some(v) => Some(v.parse().expect("--adapt takes a delta or `off`")),
            None => Some(0.1),
        },
        assert_qps: get("--assert-qps").map(|v| v.parse().expect("--assert-qps takes a rate")),
    }
}

/// Ground truth per query text, from a direct scalar run: "yes" / "no".
/// Decisions are strategy-invariant, so they stay valid while the
/// server adapts its strategy online.
fn expected_kinds(texts: &[String]) -> Vec<&'static str> {
    let mut engine = ServeEngine::layered(SEED, &KbParams::default());
    let qp = QueryProcessor::left_to_right(&engine.compiled);
    let mut scratch = RunScratch::new(&engine.compiled.graph);
    texts
        .iter()
        .map(|t| {
            let atom =
                qpl_datalog::parser::parse_query(t, &mut engine.table).expect("query parses");
            match qp.run_into(&atom, &engine.db, &mut scratch).expect("query runs") {
                qpl_engine::QueryAnswer::Yes(_) => "yes",
                qpl_engine::QueryAnswer::No => "no",
            }
        })
        .collect()
}

/// One sweep entry's measurements.
struct RunStats {
    shards: usize,
    sent: u64,
    served_reqs: u64,
    shed_reqs: u64,
    served_queries: u64,
    serve_secs: f64,
    serve_qps: f64,
    total_secs: f64,
    total_qps: f64,
    fill: f64,
    p50: f64,
    p99: f64,
    climbs: f64,
    adoptions: f64,
    steer_fallbacks: f64,
    /// Planes executed at width 1/2/4/8 (64..512 lanes), all shards.
    width_planes: [u64; 4],
    /// Per shard: (shard, served lanes, fill_ratio, serve-window qps).
    per_shard: Vec<(f64, f64, f64, f64)>,
    /// `update` rounds sent in the mixed query/update phase.
    update_rounds: u64,
    /// Each shard's applied-delta counter after that phase; convergent
    /// replicas all report `update_rounds`.
    per_shard_deltas: Vec<f64>,
    /// The merged `serve.kb.delta.applied` metrics counter.
    kb_delta_applied: f64,
    /// The merged `obs.events_dropped` metrics counter.
    events_dropped: f64,
}

/// Client `t`'s lane order: the shared text list rotated by `t`, so
/// every thread's *first* query — the steering key — differs and jobs
/// spread across shards instead of all hashing to one home replica.
fn rotate<T: Clone>(xs: &[T], by: usize) -> Vec<T> {
    let n = xs.len();
    (0..n).map(|i| xs[(i + by) % n].clone()).collect()
}

fn batch_request(texts: &[String]) -> String {
    format!(
        r#"{{"kind":"batch","qs":[{}]}}"#,
        texts.iter().map(|t| format!("\"{t}\"")).collect::<Vec<_>>().join(",")
    )
}

/// Starts a fresh `shards`-shard server, drives the full client load
/// against it, verifies every response, and returns the measurements.
fn bench_one(args: &Args, shards: usize, texts: &[String], expected: &[&'static str]) -> RunStats {
    let params = KbParams::default();
    let server = Server::start(
        ServeEngine::layered(SEED, &params),
        ServerConfig {
            shards,
            queue_cap: 4096,
            adapt_delta: args.adapt,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    let start = Arc::new(Barrier::new(args.threads + 1));
    let done = Arc::new(Barrier::new(args.threads + 1));
    let t_total = Instant::now();
    let handles: Vec<_> = (0..args.threads)
        .map(|t| {
            let req = batch_request(&rotate(texts, t % texts.len()));
            let rounds = args.rounds;
            let (start, done) = (Arc::clone(&start), Arc::clone(&done));
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut lines = Vec::with_capacity(rounds);
                start.wait();
                // Serve window: raw lines only, no parsing.
                for _ in 0..rounds {
                    stream.write_all(req.as_bytes()).expect("send");
                    stream.write_all(b"\n").expect("send");
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("response");
                    lines.push(line);
                }
                done.wait();
                lines
            })
        })
        .collect();

    start.wait();
    let t_serve = Instant::now();
    done.wait();
    let serve_secs = t_serve.elapsed().as_secs_f64();

    // Out-of-window: join, parse, and verify every stored response.
    let (mut served_reqs, mut shed_reqs) = (0u64, 0u64);
    for (t, h) in handles.into_iter().enumerate() {
        let expected = rotate(expected, t % texts.len());
        for line in h.join().expect("client thread panicked") {
            let resp = JsonValue::parse(&line).expect("response is valid JSON");
            match resp.get("kind").and_then(JsonValue::as_str) {
                Some("answers") => {
                    let results = resp
                        .get("results")
                        .and_then(JsonValue::as_array)
                        .expect("answers carries results");
                    assert_eq!(results.len(), expected.len(), "one result per lane");
                    for (r, exp) in results.iter().zip(&expected) {
                        let got = r
                            .get("answer")
                            .and_then(JsonValue::as_str)
                            .expect("served lanes carry an answer");
                        assert_eq!(got, *exp, "served answer matches the scalar run");
                    }
                    served_reqs += 1;
                }
                Some("error") => {
                    assert_eq!(
                        resp.get("error").and_then(JsonValue::as_str),
                        Some("overloaded"),
                        "the only refusal under load is `overloaded`"
                    );
                    shed_reqs += 1;
                }
                other => panic!("unexpected response kind {other:?}"),
            }
        }
    }
    let total_secs = t_total.elapsed().as_secs_f64();

    let sent = (args.threads * args.rounds) as u64;
    assert_eq!(served_reqs + shed_reqs, sent, "every request answered or refused — none dropped");
    let served_queries = served_reqs * args.batch as u64;
    let serve_qps = served_queries as f64 / serve_secs;
    let total_qps = served_queries as f64 / total_secs;

    // Mixed query/update phase (outside the timed window): live KB
    // deltas interleaved with re-queries on one connection. The churned
    // predicate never appears in any query's dependency footprint, so
    // every interleaved batch must keep answering exactly what the
    // scalar ground truth said before the churn started.
    let mut ctl = TcpStream::connect(addr).expect("stats connect");
    ctl.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut ctl_reader = BufReader::new(ctl.try_clone().expect("clone"));
    let send_line = |ctl: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str| {
        ctl.write_all(req.as_bytes()).expect("send");
        ctl.write_all(b"\n").expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        JsonValue::parse(&line).expect("response is valid JSON")
    };
    let query_req = batch_request(texts);
    for i in 0..args.updates as u64 {
        let update_req = if i % 2 == 0 {
            format!(r#"{{"kind":"update","insert":["churn(u{i})"],"id":{i}}}"#)
        } else {
            format!(r#"{{"kind":"update","retract":["churn(u{})"],"id":{i}}}"#, i - 1)
        };
        let ack = send_line(&mut ctl, &mut ctl_reader, &update_req);
        assert_eq!(ack.get("kind").and_then(JsonValue::as_str), Some("updated"), "{ack:?}");
        assert_eq!(
            ack.get("deltas_applied").and_then(JsonValue::as_f64),
            Some((i + 1) as f64),
            "every shard has applied every update so far"
        );
        let resp = send_line(&mut ctl, &mut ctl_reader, &query_req);
        assert_eq!(resp.get("kind").and_then(JsonValue::as_str), Some("answers"), "{resp:?}");
        let results =
            resp.get("results").and_then(JsonValue::as_array).expect("answers carries results");
        for (r, exp) in results.iter().zip(expected) {
            let got = r.get("answer").and_then(JsonValue::as_str).expect("lane answered");
            assert_eq!(got, *exp, "answers unchanged by out-of-footprint churn");
        }
    }

    // Pull the server's own accounting before shutting down.
    ctl.write_all(b"{\"kind\":\"stats\"}\n").expect("stats send");
    let mut stats_line = String::new();
    ctl_reader.read_line(&mut stats_line).expect("stats response");
    let stats = JsonValue::parse(&stats_line).expect("stats is valid JSON");
    let stat = |k: &str| stats.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
    let per_shard: Vec<(f64, f64, f64, f64)> = stats
        .get("shards")
        .and_then(JsonValue::as_array)
        .expect("stats carries a per-shard breakdown")
        .iter()
        .map(|s| {
            let f = |k: &str| s.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
            (f("shard"), f("served"), f("fill_ratio"), f("served") / serve_secs)
        })
        .collect();
    let mut width_planes = [0u64; 4];
    if let Some(ws) = stats.get("width_planes").and_then(JsonValue::as_array) {
        for (acc, w) in width_planes.iter_mut().zip(ws) {
            *acc = w.as_f64().unwrap_or(0.0) as u64;
        }
    }

    // Convergence: every replica must have applied every broadcast
    // delta — the per-shard counters all equal the rounds sent.
    let per_shard_deltas: Vec<f64> = stats
        .get("shards")
        .and_then(JsonValue::as_array)
        .expect("stats carries a per-shard breakdown")
        .iter()
        .map(|s| s.get("deltas_applied").and_then(JsonValue::as_f64).unwrap_or(-1.0))
        .collect();
    for (i, &d) in per_shard_deltas.iter().enumerate() {
        assert_eq!(d, args.updates as f64, "shard {i} diverged: applied {d} deltas");
    }
    let counter = |k: &str| {
        stats
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get(k))
            .and_then(JsonValue::as_f64)
    };
    let kb_delta_applied =
        counter("serve.kb.delta.applied").expect("metrics counters carry serve.kb.delta.applied");
    assert!(
        kb_delta_applied >= (args.updates * shards) as f64,
        "applied-delta counter {kb_delta_applied} below the {} broadcast applications",
        args.updates * shards
    );
    let events_dropped =
        counter("obs.events_dropped").expect("metrics counters carry obs.events_dropped");

    let run = RunStats {
        shards,
        sent,
        served_reqs,
        shed_reqs,
        served_queries,
        serve_secs,
        serve_qps,
        total_secs,
        total_qps,
        fill: stat("fill_ratio"),
        p50: stat("p50_us"),
        p99: stat("p99_us"),
        climbs: stat("climbs"),
        adoptions: stat("adoptions"),
        steer_fallbacks: stat("steer_fallbacks"),
        width_planes,
        per_shard,
        update_rounds: args.updates as u64,
        per_shard_deltas,
        kb_delta_applied,
        events_dropped,
    };
    ctl.write_all(b"{\"kind\":\"shutdown\"}\n").expect("shutdown send");
    server.join();
    run
}

fn run_json(r: &RunStats) -> String {
    let per_shard = r
        .per_shard
        .iter()
        .map(|(shard, served, fill, qps)| {
            format!(
                "{{\"shard\": {shard:.0}, \"served_queries\": {served:.0}, \
                 \"fill_ratio\": {fill:.4}, \"serve_qps\": {qps:.0}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"shards\": {}, \"sent_requests\": {}, \"served_requests\": {}, \
         \"overloaded_requests\": {}, \"served_queries\": {}, \
         \"serve_secs\": {:.3}, \"serve_qps\": {:.0}, \
         \"total_secs\": {:.3}, \"total_qps\": {:.0}, \
         \"batch_fill_ratio\": {:.4}, \"service_p50_us\": {:.1}, \
         \"service_p99_us\": {:.1}, \"strategy_climbs\": {:.0}, \
         \"adoptions\": {:.0}, \"steer_fallbacks\": {:.0}, \
         \"width_planes\": {{\"w1\": {}, \"w2\": {}, \"w4\": {}, \"w8\": {}}}, \
         \"per_shard\": [{per_shard}], \
         \"updates\": {{\"rounds\": {}, \"per_shard_deltas_applied\": [{}], \
         \"kb_delta_applied\": {:.0}, \"events_dropped\": {:.0}}}}}",
        r.shards,
        r.sent,
        r.served_reqs,
        r.shed_reqs,
        r.served_queries,
        r.serve_secs,
        r.serve_qps,
        r.total_secs,
        r.total_qps,
        r.fill,
        r.p50,
        r.p99,
        r.climbs,
        r.adoptions,
        r.steer_fallbacks,
        r.width_planes[0],
        r.width_planes[1],
        r.width_planes[2],
        r.width_planes[3],
        r.update_rounds,
        r.per_shard_deltas.iter().map(|d| format!("{d:.0}")).collect::<Vec<_>>().join(", "),
        r.kb_delta_applied,
        r.events_dropped,
    )
}

fn main() {
    let args = parse_args();
    let params = KbParams::default();
    let cores = thread::available_parallelism().map_or(1, NonZeroUsize::get);
    let texts: Vec<String> =
        (0..args.batch).map(|i| format!("q0(c{})", i % params.constants)).collect();
    let expected = expected_kinds(&texts);

    let sweep: Vec<usize> = match args.shards {
        Some(n) => vec![n.max(1)],
        None => {
            let mut s = vec![1, 2, 4, cores];
            s.sort_unstable();
            s.dedup();
            s
        }
    };

    let mut runs = Vec::with_capacity(sweep.len());
    for &shards in &sweep {
        let r = bench_one(&args, shards, &texts, &expected);
        println!(
            "shards {}: served {} queries in {:.2}s serve window = {:.0} qps \
             ({:.0} qps incl. connect+verify; requests: {} served, {} overloaded; \
             fill {:.3}, p50 {:.0}us, p99 {:.0}us, climbs {:.0}, adoptions {:.0}, \
             fallbacks {:.0})",
            r.shards,
            r.served_queries,
            r.serve_secs,
            r.serve_qps,
            r.total_qps,
            r.served_reqs,
            r.shed_reqs,
            r.fill,
            r.p50,
            r.p99,
            r.climbs,
            r.adoptions,
            r.steer_fallbacks,
        );
        runs.push(r);
    }

    let baseline = runs.iter().find(|r| r.shards == 1);
    let best = runs
        .iter()
        .max_by(|a, b| a.serve_qps.partial_cmp(&b.serve_qps).expect("qps is finite"))
        .expect("at least one run");
    let scaling = match baseline {
        Some(b) if b.serve_qps > 0.0 => format!(
            "{{\"baseline_shards\": 1, \"best_shards\": {}, \"best_serve_qps\": {:.0}, \
             \"speedup_vs_one_shard\": {:.3}}}",
            best.shards,
            best.serve_qps,
            best.serve_qps / b.serve_qps
        ),
        _ => "null".to_string(),
    };

    let runs_json =
        runs.iter().map(run_json).map(|r| format!("    {r}")).collect::<Vec<_>>().join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"qpl-serve end-to-end (TCP, line-delimited JSON)\",\n  \
         \"cores\": {cores},\n  \
         \"shape\": {{\"kb\": \"layered\", \"seed\": {SEED}, \"layers\": {}, \
         \"rules_per_layer\": {}, \"constants\": {}, \"facts_per_predicate\": {}}},\n  \
         \"load\": {{\"client_threads\": {}, \"rounds_per_thread\": {}, \
         \"batch_lanes\": {}, \"update_rounds\": {}, \"adapt_delta\": {}}},\n  \
         \"note\": \"serve_qps counts served queries over the serve window (all clients \
         connected, responses stored raw and verified afterwards); total_qps charges \
         connect + verify too. Every served lane checked against a direct scalar \
         QueryProcessor run; answered + overloaded asserted == sent. Multi-shard \
         speedup requires multiple cores; cores records what this host had\",\n  \
         \"runs\": [\n{runs_json}\n  ],\n  \
         \"scaling\": {scaling}\n}}\n",
        params.layers,
        params.rules_per_layer,
        params.constants,
        params.facts_per_predicate,
        args.threads,
        args.rounds,
        args.batch,
        args.updates,
        args.adapt.map_or("null".to_string(), |d| d.to_string()),
    );
    std::fs::write(&args.out, &json).expect("write BENCH_serve.json");
    println!("wrote {} (cores={cores}, sweep={sweep:?})", args.out);

    if let Some(min) = args.assert_qps {
        assert!(
            best.serve_qps >= min,
            "best sustained {:.0} qps is below the required {min:.0} qps floor",
            best.serve_qps
        );
        println!("qps floor {min:.0}: ok ({:.0} qps at {} shards)", best.serve_qps, best.shards);
    }
}
