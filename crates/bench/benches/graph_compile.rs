//! Bench: rule base + query form → inference graph compilation.
//!
//! The compiler runs once per query form, so it is not hot — but it must
//! scale to realistic rule bases. Benchmarked on the paper's KB and on
//! layered KBs of growing depth/branching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpl_datalog::parser::{parse_program, parse_query_form};
use qpl_datalog::SymbolTable;
use qpl_graph::compile::{compile, CompileOptions};
use qpl_workload::generator::{random_layered_kb, KbParams};
use qpl_workload::paper::UNIVERSITY_KB;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_university(c: &mut Criterion) {
    let mut table = SymbolTable::new();
    let program = parse_program(UNIVERSITY_KB, &mut table).expect("parses");
    let form = parse_query_form("instructor(b)", &mut table).expect("parses");
    c.bench_function("compile_university", |b| {
        b.iter(|| {
            compile(std::hint::black_box(&program.rules), &form, &table, &CompileOptions::default())
                .expect("compiles")
        })
    });
}

fn bench_layered(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_layered");
    for (layers, width) in [(3usize, 2usize), (5, 2), (4, 3)] {
        let mut rng = StdRng::seed_from_u64(7);
        let params = KbParams { layers, rules_per_layer: width, ..Default::default() };
        let (mut table, rules, _, root) = random_layered_kb(&mut rng, &params);
        let form = parse_query_form(&format!("{root}(b)"), &mut table).expect("parses");
        // The unfolded tree has width^layers leaves.
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{layers}x{width}")),
            &layers,
            |b, _| {
                b.iter(|| {
                    compile(std::hint::black_box(&rules), &form, &table, &CompileOptions::default())
                        .expect("compiles")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_university, bench_layered);
criterion_main!(benches);
