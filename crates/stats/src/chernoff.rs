//! Hoeffding/Chernoff tail bounds (the paper's Equation 1) and inversions.
//!
//! For i.i.d. random variables `Δ₁, …, Δₙ` with common mean `μ`, each
//! confined to an interval of width `Λ`, the sample mean `Yₙ` satisfies
//!
//! ```text
//! Pr[ Yₙ > μ + β ] ≤ exp(−2·n·(β/Λ)²)
//! Pr[ Yₙ < μ − β ] ≤ exp(−2·n·(β/Λ)²)
//! ```
//!
//! The paper cites this as "Chernoff bounds" (\[Che52\], via \[Bol85 p.12\]);
//! in modern terminology it is Hoeffding's inequality. The functions
//! below expose the bound and its three inversions: given any two of
//! `(n, β, δ)` (with `Λ`), solve for the third.
//!
//! ## Degenerate and invalid inputs — one convention, module-wide
//!
//! * `Λ` (`range`) must be **finite and non-negative**; NaN or negative
//!   ranges panic in every function. `range == 0` is the *degenerate*
//!   distribution whose samples all equal `μ` exactly: the sample mean
//!   is exact, so tails are `0`, radii are `0`, thresholds are `0`, and
//!   `0` samples suffice. (Previously `hoeffding_tail` called
//!   `range == 0` vacuous → 1.0 while `confidence_radius` called it
//!   exact → radius 0; the exact reading is the consistent one.)
//! * `β` (`beta`) must not be NaN. In [`hoeffding_tail`] a non-positive
//!   `β` (or `n == 0`) makes the bound vacuous → 1.0; the inversions
//!   require `β > 0`.
//! * `δ` (`delta`) must lie in `(0, 1]`; anything else — including NaN —
//!   panics.
//! * Inversions that would produce a sample count too large for `u64`
//!   panic with an explicit overflow message instead of silently
//!   saturating through an `as u64` cast.

/// Panic unless `range` is a finite, non-negative interval width.
fn assert_valid_range(range: f64) {
    assert!(
        range.is_finite() && range >= 0.0,
        "range must be finite and non-negative (got {range})"
    );
}

/// One-sided tail probability bound: `Pr[Yₙ − μ > β] ≤ exp(−2n(β/Λ)²)`.
///
/// Returns 1.0 when the bound is vacuous (`β ≤ 0` or `n == 0`), and 0.0
/// for the degenerate `range == 0` distribution (the sample mean equals
/// `μ` exactly, so a deviation of `β > 0` is impossible); see the module
/// header for the convention. The result is always a valid probability
/// bound.
///
/// # Panics
/// Panics if `β` is NaN or `range` is NaN, infinite, or negative.
///
/// # Examples
/// ```
/// let p = qpl_stats::chernoff::hoeffding_tail(100, 0.1, 1.0);
/// assert!((p - (-2.0f64).exp()).abs() < 1e-12);
/// ```
pub fn hoeffding_tail(n: u64, beta: f64, range: f64) -> f64 {
    assert!(!beta.is_nan(), "beta must not be NaN");
    assert_valid_range(range);
    if n == 0 || beta <= 0.0 {
        return 1.0;
    }
    if range == 0.0 {
        return 0.0;
    }
    let r = beta / range;
    (-2.0 * n as f64 * r * r).exp().min(1.0)
}

/// Two-sided tail bound: `Pr[|Yₙ − μ| > β] ≤ 2·exp(−2n(β/Λ)²)`.
pub fn two_sided_tail(n: u64, beta: f64, range: f64) -> f64 {
    (2.0 * hoeffding_tail(n, beta, range)).min(1.0)
}

/// Deviation radius `β` such that `Pr[Yₙ − μ > β] ≤ δ` (one-sided):
/// `β = Λ·sqrt(ln(1/δ) / (2n))`.
///
/// This is the `Λ·sqrt((1/(2n))·ln(1/δ))` term of the paper's Equation 2
/// divided through by `n` (Equation 2 states the bound on the *sum*
/// `Δ[Θ,Θ',S]`, i.e. `n` times this radius; see [`sum_threshold`]).
///
/// Returns 0 for the degenerate `range == 0` distribution (the sample
/// mean is exact; see the module header).
///
/// # Panics
/// Panics if `δ` is not in `(0, 1]` (NaN included), `n == 0`, or `range`
/// is NaN, infinite, or negative.
pub fn confidence_radius(n: u64, delta: f64, range: f64) -> f64 {
    assert!(n > 0, "confidence_radius requires n > 0");
    assert!(delta > 0.0 && delta <= 1.0, "delta must be in (0,1] (got {delta})");
    assert_valid_range(range);
    range * ((1.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// The paper's Equation 2 threshold on the **sum** of `n` paired
/// differences: `Λ·sqrt((n/2)·ln(1/δ))`.
///
/// If the observed total `Δ[Θ,Θ',S] = Σᵢ Δᵢ` exceeds this value, then with
/// confidence at least `1 − δ` the true mean difference `D[Θ,Θ']` is
/// positive, i.e. `Θ'` is strictly better than `Θ`.
///
/// # Examples
/// ```
/// // n·confidence_radius == sum_threshold
/// let n = 500u64;
/// let (d, lam) = (0.05, 4.0);
/// let a = qpl_stats::chernoff::sum_threshold(n, d, lam);
/// let b = n as f64 * qpl_stats::chernoff::confidence_radius(n, d, lam);
/// assert!((a - b).abs() < 1e-9);
/// ```
pub fn sum_threshold(n: u64, delta: f64, range: f64) -> f64 {
    assert!(delta > 0.0 && delta <= 1.0, "delta must be in (0,1] (got {delta})");
    assert_valid_range(range);
    range * ((n as f64 / 2.0) * (1.0 / delta).ln()).sqrt()
}

/// Number of samples needed so that the one-sided deviation radius is at
/// most `β` at confidence `1 − δ`: `n = ⌈(Λ/β)²·ln(1/δ)/2⌉`.
///
/// Returns 0 for the degenerate `range == 0` distribution (the sample
/// mean is exact after any number of samples; see the module header).
///
/// # Panics
/// Panics if `β ≤ 0` or NaN, `δ ∉ (0,1]` (NaN included), `range` is NaN,
/// infinite, or negative, or the required sample count does not fit in a
/// `u64` (previously this saturated silently through the `as u64` cast).
pub fn samples_for_radius(beta: f64, delta: f64, range: f64) -> u64 {
    assert!(!beta.is_nan() && beta > 0.0, "beta must be positive (got {beta})");
    assert!(delta > 0.0 && delta <= 1.0, "delta must be in (0,1] (got {delta})");
    assert_valid_range(range);
    if range == 0.0 {
        return 0;
    }
    let r = range / beta;
    let m = (r * r) * (1.0 / delta).ln() / 2.0;
    assert!(
        m.is_finite() && m.ceil() < u64::MAX as f64,
        "samples_for_radius: required sample count {m:e} overflows u64 \
         (beta={beta}, delta={delta}, range={range} too extreme)"
    );
    m.ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_decreases_in_n() {
        let mut prev = 1.0;
        for n in [1u64, 10, 100, 1000, 10_000] {
            let p = hoeffding_tail(n, 0.05, 1.0);
            assert!(p < prev, "tail must strictly decrease with n");
            prev = p;
        }
    }

    #[test]
    fn tail_decreases_in_beta() {
        let mut prev = 1.0 + 1e-12;
        for k in 1..20 {
            let p = hoeffding_tail(100, k as f64 * 0.01, 1.0);
            assert!(p < prev, "tail must strictly decrease with beta");
            prev = p;
        }
    }

    #[test]
    fn vacuous_cases_return_one() {
        assert_eq!(hoeffding_tail(0, 0.5, 1.0), 1.0);
        assert_eq!(hoeffding_tail(10, 0.0, 1.0), 1.0);
        assert_eq!(hoeffding_tail(10, -1.0, 1.0), 1.0);
    }

    #[test]
    fn degenerate_range_is_exact_everywhere() {
        // range == 0 means every sample equals μ: deviations are
        // impossible, radii collapse, and no samples are needed. The
        // same convention in all four functions (module header).
        assert_eq!(hoeffding_tail(10, 0.5, 0.0), 0.0);
        assert_eq!(two_sided_tail(10, 0.5, 0.0), 0.0);
        assert_eq!(confidence_radius(10, 0.05, 0.0), 0.0);
        assert_eq!(sum_threshold(10, 0.05, 0.0), 0.0);
        assert_eq!(samples_for_radius(0.5, 0.05, 0.0), 0);
    }

    #[test]
    #[should_panic(expected = "range must be finite")]
    fn tail_rejects_negative_range() {
        hoeffding_tail(10, 0.5, -1.0);
    }

    #[test]
    #[should_panic(expected = "range must be finite")]
    fn tail_rejects_nan_range() {
        hoeffding_tail(10, 0.5, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "beta must not be NaN")]
    fn tail_rejects_nan_beta() {
        hoeffding_tail(10, f64::NAN, 1.0);
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn samples_rejects_nan_beta() {
        samples_for_radius(f64::NAN, 0.05, 1.0);
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn samples_panics_instead_of_saturating() {
        // Λ/β = 1e300: the requirement is ~1e600, far beyond u64. The
        // old code silently returned u64::MAX here.
        samples_for_radius(1e-300, 0.05, 1.0);
    }

    #[test]
    fn two_sided_is_clamped() {
        assert!(two_sided_tail(1, 1e-9, 1.0) <= 1.0);
    }

    #[test]
    fn radius_round_trips_through_tail() {
        // hoeffding_tail(n, confidence_radius(n, δ, Λ), Λ) == δ exactly.
        for &(n, delta, range) in &[(10u64, 0.1, 1.0), (500, 0.01, 3.5), (7, 0.5, 10.0)] {
            let beta = confidence_radius(n, delta, range);
            let p = hoeffding_tail(n, beta, range);
            assert!((p - delta).abs() < 1e-10, "n={n} delta={delta}: got {p}");
        }
    }

    #[test]
    fn samples_for_radius_achieves_target() {
        for &(beta, delta, range) in &[(0.05, 0.05, 1.0), (0.5, 0.01, 4.0), (0.01, 0.2, 2.0)] {
            let n = samples_for_radius(beta, delta, range);
            assert!(hoeffding_tail(n, beta, range) <= delta + 1e-12);
            // One fewer sample must not suffice (ceiling is tight).
            if n > 1 {
                assert!(hoeffding_tail(n - 1, beta, range) > delta - 1e-9);
            }
        }
    }

    #[test]
    fn sum_threshold_matches_equation_2() {
        // Equation 2: Δ[Θ,Θ',S] > Λ·sqrt((n/2)·ln(1/δ)).
        let t = sum_threshold(200, 0.05, 4.0);
        let expected = 4.0 * (100.0f64 * (1.0f64 / 0.05).ln()).sqrt();
        assert!((t - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn radius_rejects_bad_delta() {
        confidence_radius(10, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn radius_rejects_zero_n() {
        confidence_radius(0, 0.5, 1.0);
    }

    /// Empirical check: for Bernoulli(p) samples, the measured frequency
    /// of `Yₙ > μ + β` stays below the Hoeffding bound.
    #[test]
    fn bound_holds_empirically_for_bernoulli() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let (p, n, beta) = (0.3f64, 50u64, 0.15f64);
        let trials = 20_000;
        let mut exceed = 0u32;
        for _ in 0..trials {
            let mut sum = 0.0;
            for _ in 0..n {
                if next() < p {
                    sum += 1.0;
                }
            }
            if sum / n as f64 > p + beta {
                exceed += 1;
            }
        }
        let freq = exceed as f64 / trials as f64;
        let bound = hoeffding_tail(n, beta, 1.0);
        assert!(freq <= bound, "empirical {freq} exceeded Hoeffding bound {bound}");
    }
}
