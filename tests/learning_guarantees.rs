//! End-to-end statistical guarantees, exercised through the facade on
//! randomized instances (heavier, seed-pinned versions live in the
//! `qpl-bench` experiment suite).

use qpl::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_instance(seed: u64) -> (InferenceGraph, IndependentModel) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = qpl::workload::random_tree_with_retrievals(
        &mut rng,
        &qpl::workload::TreeParams::default(),
        3,
        6,
    );
    let m = qpl::workload::random_retrieval_model(&mut rng, &g, (0.05, 0.95));
    (g, m)
}

#[test]
fn pib_never_worsens_across_seeds() {
    // 40 instances: every climb must not raise the exact expected cost
    // (δ = 0.02 total, so the chance of any mistake in the whole test is
    // well under 40·0.02 — this test is seed-pinned and deterministic).
    for seed in 0..40u64 {
        let (g, truth) = random_instance(seed);
        let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.02));
        let mut prev = truth.expected_cost(&g, pib.strategy());
        let mut rng = StdRng::seed_from_u64(seed + 10_000);
        let mut climbs = 0;
        for _ in 0..4000 {
            pib.observe(&g, &truth.sample(&mut rng));
            if pib.history().len() > climbs {
                climbs = pib.history().len();
                let now = truth.expected_cost(&g, pib.strategy());
                assert!(now <= prev + 1e-12, "seed {seed}: climb raised cost {prev} → {now}");
                prev = now;
            }
        }
    }
}

#[test]
fn pib_converges_to_certifiable_local_optimum() {
    // PIB's Δ̃ statistics are deliberately conservative (E[Δ̃] ≤ D:
    // unexplored arcs are assumed blocked), so the honest convergence
    // property is: after many samples, no neighbour remains with a
    // *positive expected under-estimate* — i.e. nothing PIB could ever
    // certify is left on the table. (A neighbour with better true cost
    // but non-positive E[Δ̃] is invisible to trace-only statistics; the
    // paper's PAO exists precisely for that gap.)
    let (g, truth) = random_instance(7);
    let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.05));
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..60_000 {
        pib.observe(&g, &truth.sample(&mut rng));
    }
    let set = TransformationSet::all_sibling_swaps(&g);
    for (swap, n) in set.neighbors(&g, pib.strategy()) {
        // Estimate E[Δ̃] for this neighbour under the truth.
        let samples = 20_000;
        let mut sum = 0.0;
        for _ in 0..samples {
            let ctx = truth.sample(&mut rng);
            let trace = qpl::graph::context::execute(&g, pib.strategy(), &ctx);
            sum += qpl::core::delta::delta_tilde(&g, &trace, &n);
        }
        let mean = sum / f64::from(samples);
        assert!(
            mean <= 0.03 * swap.lambda(&g),
            "neighbour via {swap:?} has E[Δ̃] ≈ {mean} > 0: PIB should have climbed"
        );
    }
}

#[test]
fn pao_beats_smith_on_anticorrelated_workload() {
    // A database stuffed with facts the queries never ask about: the
    // fact-count heuristic misorders; PAO (which samples queries) wins.
    let mut u = qpl::workload::university();
    let db2 = u.db2();
    let g = u.graph().clone();
    let smith = SmithHeuristic::strategy(&u.compiled, &db2).unwrap();
    let minors_model = IndependentModel::from_retrieval_probs(&g, &[0.0, 0.5]).unwrap();
    let mut pao = Pao::new(&g, PaoConfig::theorem2(0.5, 0.1).with_sample_cap(2000)).unwrap();
    let mut rng = StdRng::seed_from_u64(12);
    while !pao.done() {
        let ctx = minors_model.sample(&mut rng);
        pao.observe(&g, &ctx);
    }
    let (theta_pao, _) = pao.finish(&g).unwrap();
    let c_pao = minors_model.expected_cost(&g, &theta_pao);
    let c_smith = minors_model.expected_cost(&g, &smith);
    assert!(c_pao < c_smith, "PAO {c_pao} must beat Smith {c_smith}");
}

#[test]
fn pao_epsilon_guarantee_sampled() {
    for seed in 0..15u64 {
        let (g, truth) = random_instance(seed + 500);
        let (_, c_opt) = optimal_strategy(&g, &truth, 2_000_000).unwrap();
        let mut pao = Pao::new(&g, PaoConfig::theorem2(1.0, 0.1).with_sample_cap(2500)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed + 900);
        while !pao.done() {
            let ctx = truth.sample(&mut rng);
            pao.observe(&g, &ctx);
        }
        let (theta, _) = pao.finish(&g).unwrap();
        let c = truth.expected_cost(&g, &theta);
        assert!(c <= c_opt + 1.0 + 1e-9, "seed {seed}: regret {} > ε", c - c_opt);
    }
}

#[test]
fn palo_certificate_sound_on_sample() {
    for seed in 0..10u64 {
        let (g, truth) = random_instance(seed + 2000);
        let eps = 1.0;
        let mut palo = Palo::new(&g, Strategy::left_to_right(&g), PaloConfig::new(eps, 0.05));
        let mut rng = StdRng::seed_from_u64(seed + 3000);
        let mut n = 0u64;
        while palo.observe(&g, &truth.sample(&mut rng)) {
            n += 1;
            assert!(n < 3_000_000, "seed {seed}: PALO failed to stop");
        }
        let set = TransformationSet::all_sibling_swaps(&g);
        let c_final = truth.expected_cost(&g, palo.strategy());
        for (_, nb) in set.neighbors(&g, palo.strategy()) {
            assert!(
                truth.expected_cost(&g, &nb) >= c_final - eps - 1e-9,
                "seed {seed}: certificate unsound"
            );
        }
    }
}

#[test]
fn upsilon_oracle_and_pib_agree_on_flat_graphs() {
    // On flat graphs the DFS space is the whole strategy space, so a
    // well-fed PIB and Υ should land on strategies of equal cost.
    let mut b = GraphBuilder::new("flat");
    let root = b.root();
    for (i, cost) in [1.0, 2.0, 1.5, 3.0].iter().enumerate() {
        b.retrieval(root, &format!("D{i}"), *cost);
    }
    let g = b.finish().unwrap();
    let truth = IndependentModel::from_retrieval_probs(&g, &[0.1, 0.8, 0.3, 0.6]).unwrap();
    let upsilon = upsilon_aot(&g, &truth).unwrap();
    let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.05));
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..80_000 {
        pib.observe(&g, &truth.sample(&mut rng));
    }
    let c_u = truth.expected_cost(&g, &upsilon);
    let c_p = truth.expected_cost(&g, pib.strategy());
    assert!((c_u - c_p).abs() < 0.15, "Υ {c_u} vs PIB {c_p}");
}
