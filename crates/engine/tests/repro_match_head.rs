use qpl_datalog::parser::{parse_program, parse_query, parse_query_form};
use qpl_datalog::SymbolTable;
use qpl_engine::qp::QueryProcessor;
use qpl_graph::compile::{compile, CompileOptions};

#[test]
fn repeated_head_var_free_then_bound() {
    let kb = "r(X, X) :- s(X).\n s(d).";
    let mut t = SymbolTable::new();
    let p = parse_program(kb, &mut t).unwrap();
    let qf = parse_query_form("r(f,b)", &mut t).unwrap();
    let cg = compile(&p.rules, &qf, &t, &CompileOptions::default()).unwrap();
    println!("{}", cg.graph.outline());
    for (i, b) in cg.bindings.iter().enumerate() {
        println!("arc {i}: {b:?}");
    }
    let qp = QueryProcessor::left_to_right(&cg);
    let q = parse_query("r(Z, c)", &mut t).unwrap();
    let run = qp.run(&q, &p.facts).unwrap();
    println!("answer: {:?}", run.answer);
    assert!(!run.answer.is_yes(), "engine wrongly proved r(Z,c)");
}
