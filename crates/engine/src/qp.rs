//! The fixed-strategy query processor `QP = ⟨G, Θ⟩`.
//!
//! [`classify_context`] realizes Note 2: a concrete `⟨query, DB⟩` pair is
//! mapped to its blocked-arc equivalence class by evaluating every arc's
//! binding — a reduction is blocked iff one of its unification guards
//! fails for this query's constants; a retrieval is blocked iff its
//! instantiated pattern matches no stored fact. [`QueryProcessor`] then
//! executes the graph-level strategy in that class and reports the
//! answer, cost, and trace.

use crate::cache::{DependencyFootprint, RunCache};
use qpl_datalog::{Atom, Database, Substitution, Symbol, Term, Var};
use qpl_graph::batch::{execute_batch, BatchRun, ContextBatch, LANES, MAX_LANES};
use qpl_graph::compile::{ArcBinding, CompiledGraph, Guard, PatternTerm};
use qpl_graph::context::{
    execute_partial_into, execute_probe_into, Context, RunOutcome, RunScratch, Trace,
};
use qpl_graph::program::{execute_program_partial_into, StrategyProgram};
use qpl_graph::strategy::Strategy;
use qpl_graph::{ArcId, GraphError, InferenceGraph};

/// The satisficing answer to a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryAnswer {
    /// A derivation was found; for query forms with free positions, the
    /// witnessing ground atom.
    Yes(Atom),
    /// No derivation exists under this graph.
    No,
}

impl QueryAnswer {
    /// Whether the answer is affirmative.
    pub fn is_yes(&self) -> bool {
        matches!(self, QueryAnswer::Yes(_))
    }
}

/// Evaluates the guards of an arc for the given bound constants.
fn guards_hold(guards: &[Guard], constants: &[Symbol]) -> bool {
    guards.iter().all(|g| match *g {
        Guard::ArgEqConst(i, c) => constants[i] == c,
        Guard::ArgEqArg(i, j) => constants[i] == constants[j],
    })
}

/// Instantiates a retrieval pattern with the query's bound constants,
/// using fresh variables for free positions.
fn instantiate_pattern(predicate: Symbol, pattern: &[PatternTerm], constants: &[Symbol]) -> Atom {
    let mut fresh = 0u32;
    let args = pattern
        .iter()
        .map(|p| match *p {
            PatternTerm::QueryArg(i) => Term::Const(constants[i]),
            PatternTerm::Const(c) => Term::Const(c),
            PatternTerm::Free => {
                let v = Term::Var(Var(fresh));
                fresh += 1;
                v
            }
        })
        .collect();
    Atom::new(predicate, args)
}

/// Note 2: maps `⟨query, DB⟩` to its blocked-arc context class.
///
/// # Errors
/// [`GraphError::InvalidStrategy`] if the query does not match the
/// compiled query form.
pub fn classify_context(
    compiled: &CompiledGraph,
    query: &Atom,
    db: &Database,
) -> Result<Context, GraphError> {
    let mut ctx = Context::all_open(&compiled.graph);
    classify_context_into(compiled, query, db, &mut ctx)?;
    Ok(ctx)
}

/// [`classify_context`] into a caller-owned buffer (resized to fit), so
/// per-query loops reuse one allocation.
///
/// # Errors
/// [`GraphError::InvalidStrategy`] if the query does not match the
/// compiled query form.
pub fn classify_context_into(
    compiled: &CompiledGraph,
    query: &Atom,
    db: &Database,
    out: &mut Context,
) -> Result<(), GraphError> {
    if !compiled.form.matches(query) {
        return Err(GraphError::InvalidStrategy(
            "query does not match compiled form (predicate/arity/binding mismatch)".to_string(),
        ));
    }
    let constants = compiled.form.bound_constants(query);
    out.reset_from_fn(&compiled.graph, |a| arc_blocked(compiled.binding(a), &constants, db));
    Ok(())
}

/// Whether one arc is blocked for the given query constants and database.
fn arc_blocked(binding: &ArcBinding, constants: &[Symbol], db: &Database) -> bool {
    match binding {
        ArcBinding::Reduction { guards, .. } => !guards_hold(guards, constants),
        ArcBinding::Retrieval { predicate, pattern, guards } => {
            if !guards_hold(guards, constants) {
                return true;
            }
            let atom = instantiate_pattern(*predicate, pattern, constants);
            if atom.is_ground() {
                !db.contains_atom(&atom)
            } else {
                db.matches(&atom, &Substitution::new()).is_empty()
            }
        }
    }
}

/// Reusable buffers for the batch entry points
/// ([`QueryProcessor::run_batch_into`]): the context plane, the result
/// planes, a classification staging context, and a scalar scratch for
/// the interpreter fallback. One of these per serving thread makes the
/// whole batch path allocation-free after warm-up.
#[derive(Debug, Clone)]
pub struct BatchScratch {
    batch: ContextBatch,
    run: BatchRun,
    staging: Context,
    scratch: RunScratch,
    /// Per-lane staging contexts for lossy plane assembly
    /// ([`pool_context`](Self::pool_context)), grown on demand.
    pool: Vec<Context>,
}

impl BatchScratch {
    /// Buffers sized for `g`.
    pub fn new(g: &InferenceGraph) -> Self {
        Self {
            batch: ContextBatch::new(g.arc_count(), LANES),
            run: BatchRun::new(),
            staging: Context::all_open(g),
            scratch: RunScratch::new(g),
            pool: Vec::new(),
        }
    }

    /// Lane `lane`'s pool context, growing the pool on demand — for
    /// callers that classify queries one at a time with per-lane error
    /// isolation (a serving shard keeps the lanes that classify and
    /// fails the rest individually, where
    /// [`classify_batch_into`](QueryProcessor::classify_batch_into)
    /// would reject the whole plane). Contents are whatever the caller
    /// last wrote; always classify into it before assembling.
    pub fn pool_context(&mut self, g: &InferenceGraph, lane: usize) -> &mut Context {
        while self.pool.len() <= lane {
            self.pool.push(Context::all_open(g));
        }
        &mut self.pool[lane]
    }

    /// Assembles pool contexts `0..lanes` into the plane (reset to
    /// exactly `lanes` lanes over `arc_count` arcs) — the lossy
    /// counterpart of
    /// [`classify_batch_into`](QueryProcessor::classify_batch_into).
    ///
    /// # Panics
    /// If fewer than `lanes` pool contexts exist.
    pub fn assemble_pool_plane(&mut self, arc_count: usize, lanes: usize) {
        assert!(lanes <= self.pool.len(), "pool holds every assembled lane");
        self.batch.reset(arc_count, lanes);
        for (lane, ctx) in self.pool[..lanes].iter().enumerate() {
            self.batch.set_lane(lane, ctx);
        }
    }

    /// Split borrow for callers that drive
    /// [`run_classified_batch`](QueryProcessor::run_classified_batch)
    /// off one scratch: the assembled plane, the result planes, and the
    /// scalar fallback scratch.
    pub fn plane_parts_mut(&mut self) -> (&ContextBatch, &mut BatchRun, &mut RunScratch) {
        (&self.batch, &mut self.run, &mut self.scratch)
    }

    /// The context plane filled by the most recent
    /// [`run_batch_into`](QueryProcessor::run_batch_into) chunk — the
    /// classified contexts an adaptation loop feeds to
    /// `Pib::observe_batch`.
    pub fn batch(&self) -> &ContextBatch {
        &self.batch
    }

    /// The result planes of the most recent chunk.
    pub fn run(&self) -> &BatchRun {
        &self.run
    }
}

/// Result of processing one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRun {
    /// The satisficing answer.
    pub answer: QueryAnswer,
    /// The graph-level execution trace (arc outcomes and cost).
    pub trace: Trace,
    /// The context class the query fell into.
    pub context: Context,
}

/// A query processor `⟨G, Θ⟩` bound to a compiled graph.
///
/// The processor owns its strategy (PIB mutates it between queries) but
/// borrows the compiled graph, which is immutable and shared.
#[derive(Debug, Clone)]
pub struct QueryProcessor<'g> {
    compiled: &'g CompiledGraph,
    strategy: Strategy,
    /// Jump-threaded fast path, compiled once per strategy. `None` when
    /// the strategy does not lower (relaxed partial sequences, non-tree
    /// graphs) — execution then falls back to the interpreter, with
    /// identical results either way.
    program: Option<StrategyProgram>,
    /// Predicates the compiled graph's retrieval arcs probe, computed
    /// once per processor — the validity scope for `run_cost_cached`'s
    /// memo, so deltas on unrelated predicates keep it warm.
    footprint: DependencyFootprint,
}

impl<'g> QueryProcessor<'g> {
    /// Creates a processor with the given strategy.
    pub fn new(compiled: &'g CompiledGraph, strategy: Strategy) -> Self {
        let program = StrategyProgram::compile(&compiled.graph, &strategy).ok();
        let footprint = DependencyFootprint::of_compiled(compiled);
        Self { compiled, strategy, program, footprint }
    }

    /// Creates a processor with the depth-first left-to-right strategy.
    pub fn left_to_right(compiled: &'g CompiledGraph) -> Self {
        Self::new(compiled, Strategy::left_to_right(&compiled.graph))
    }

    /// The current strategy.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The compiled jump-threaded program backing
    /// [`run_into`](Self::run_into), when the strategy lowers.
    pub fn program(&self) -> Option<&StrategyProgram> {
        self.program.as_ref()
    }

    /// Replaces the strategy (PIB's hill-climbing step) and recompiles
    /// the program fast path.
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.program = StrategyProgram::compile(&self.compiled.graph, &strategy).ok();
        self.strategy = strategy;
    }

    /// The compiled graph.
    pub fn compiled(&self) -> &'g CompiledGraph {
        self.compiled
    }

    /// The dependency footprint of the compiled graph: every predicate
    /// its retrieval arcs can probe. Database deltas outside this set
    /// cannot change any answer this processor produces.
    pub fn footprint(&self) -> &DependencyFootprint {
        &self.footprint
    }

    /// Processes one query against `db`.
    ///
    /// # Errors
    /// [`GraphError::InvalidStrategy`] if the query does not match the
    /// compiled form.
    pub fn run(&self, query: &Atom, db: &Database) -> Result<QueryRun, GraphError> {
        let mut scratch = RunScratch::new(&self.compiled.graph);
        let answer = self.run_into(query, db, &mut scratch)?;
        Ok(QueryRun { answer, trace: scratch.to_trace(), context: scratch.partial().clone() })
    }

    /// [`run`](Self::run) into reusable buffers: classifies the context
    /// into the scratch's partial buffer and executes there, so a query
    /// loop holding one [`RunScratch`] allocates nothing per query. The
    /// trace and context remain readable off the scratch.
    ///
    /// # Errors
    /// As for [`run`](Self::run).
    pub fn run_into(
        &self,
        query: &Atom,
        db: &Database,
        scratch: &mut RunScratch,
    ) -> Result<QueryAnswer, GraphError> {
        classify_context_into(self.compiled, query, db, scratch.partial_mut())?;
        let outcome = match &self.program {
            Some(p) => execute_program_partial_into(p, scratch),
            None => execute_partial_into(&self.compiled.graph, &self.strategy, scratch),
        };
        Ok(match outcome {
            RunOutcome::Succeeded(arc) => QueryAnswer::Yes(self.witness(arc, query, db)),
            RunOutcome::Exhausted => QueryAnswer::No,
        })
    }

    /// Processes one query against `db` *lazily*: arc statuses are
    /// evaluated only when the strategy actually attempts the arc, so a
    /// query answered on the first path touches exactly one database
    /// probe — the way a real deployment would run. Produces a trace
    /// identical to [`run`](Self::run) (property-tested), but the
    /// returned [`QueryRun::context`] contains statuses only for
    /// attempted arcs (unattempted arcs read as open).
    ///
    /// # Errors
    /// [`GraphError::InvalidStrategy`] if the query does not match the
    /// compiled form.
    pub fn run_lazy(&self, query: &Atom, db: &Database) -> Result<QueryRun, GraphError> {
        let mut scratch = RunScratch::new(&self.compiled.graph);
        let answer = self.run_lazy_into(query, db, &mut scratch)?;
        Ok(QueryRun { answer, trace: scratch.to_trace(), context: scratch.partial().clone() })
    }

    /// [`run_lazy`](Self::run_lazy) into reusable buffers — the lazy
    /// probing semantics with zero per-query allocation. The trace and
    /// the partial context remain readable off the scratch.
    ///
    /// # Errors
    /// As for [`run_lazy`](Self::run_lazy).
    pub fn run_lazy_into(
        &self,
        query: &Atom,
        db: &Database,
        scratch: &mut RunScratch,
    ) -> Result<QueryAnswer, GraphError> {
        if !self.compiled.form.matches(query) {
            return Err(GraphError::InvalidStrategy(
                "query does not match compiled form (predicate/arity/binding mismatch)".to_string(),
            ));
        }
        let constants = self.compiled.form.bound_constants(query);
        let outcome = execute_probe_into(&self.compiled.graph, &self.strategy, scratch, |a| {
            arc_blocked(self.compiled.binding(a), &constants, db)
        });
        Ok(match outcome {
            RunOutcome::Succeeded(arc) => QueryAnswer::Yes(self.witness(arc, query, db)),
            RunOutcome::Exhausted => QueryAnswer::No,
        })
    }

    /// [`run_into`](Self::run_into) with telemetry: wraps the run in an
    /// `engine.qp.run` wall-clock span and emits the finished trace's
    /// `graph.run.*` counters plus an `engine.qp.queries` /
    /// `engine.qp.yes_answers` tally. With a
    /// [`NoopSink`](qpl_obs::NoopSink) this is `run_into` plus a few
    /// dead branches — no clock reads, no allocation.
    ///
    /// # Errors
    /// As for [`run`](Self::run).
    pub fn run_into_observed(
        &self,
        query: &Atom,
        db: &Database,
        scratch: &mut RunScratch,
        sink: &mut dyn qpl_obs::MetricsSink,
    ) -> Result<QueryAnswer, GraphError> {
        let timer = qpl_obs::SpanTimer::start(sink, "engine.qp.run");
        let answer = self.run_into(query, db, scratch)?;
        timer.finish(sink);
        sink.counter("engine.qp.queries", 1);
        if answer.is_yes() {
            sink.counter("engine.qp.yes_answers", 1);
        }
        if sink.enabled() {
            scratch.to_trace().emit_to(sink);
        }
        Ok(answer)
    }

    /// [`run_cost_cached`](Self::run_cost_cached) with telemetry: the
    /// same memoized run wrapped in an `engine.qp.run_cached` span, with
    /// `engine.qp.queries` tallied; cache hit/miss counters live on the
    /// [`RunCache`] itself (emit them once per phase via
    /// [`RunCache::emit_to`]).
    ///
    /// # Errors
    /// As for [`run`](Self::run).
    pub fn run_cost_cached_observed(
        &self,
        query: &Atom,
        db: &Database,
        cache: &mut RunCache,
        scratch: &mut RunScratch,
        sink: &mut dyn qpl_obs::MetricsSink,
    ) -> Result<(QueryAnswer, f64), GraphError> {
        let timer = qpl_obs::SpanTimer::start(sink, "engine.qp.run_cached");
        let result = self.run_cost_cached(query, db, cache, scratch)?;
        timer.finish(sink);
        sink.counter("engine.qp.queries", 1);
        if sink.enabled() {
            sink.value("engine.qp.cost", result.1);
        }
        Ok(result)
    }

    /// [`run_into`](Self::run_into) memoized through a [`RunCache`]:
    /// returns the `(answer, cost)` pair for `query`, reusing a prior
    /// run when the same bound constants were already processed under
    /// the current ⟨database instance, footprint generation, strategy⟩
    /// triple. Validity is scoped to the processor's
    /// [`footprint`](Self::footprint): a delta on a predicate no
    /// retrieval arc probes leaves the memo warm, while footprint
    /// deltas, [`set_strategy`](Self::set_strategy) calls, or switching
    /// `Database` instances all self-invalidate — so interleaving
    /// database updates stays correct and only repeated identical runs
    /// get cheaper.
    ///
    /// On a cache miss the scratch holds the run's trace and partial
    /// context as usual; on a hit the scratch is untouched and the cost
    /// comes from the memo.
    ///
    /// # Errors
    /// As for [`run`](Self::run).
    pub fn run_cost_cached(
        &self,
        query: &Atom,
        db: &Database,
        cache: &mut RunCache,
        scratch: &mut RunScratch,
    ) -> Result<(QueryAnswer, f64), GraphError> {
        if !self.compiled.form.matches(query) {
            return Err(GraphError::InvalidStrategy(
                "query does not match compiled form (predicate/arity/binding mismatch)".to_string(),
            ));
        }
        let key = self.compiled.form.bound_constants(query);
        // The fingerprint is cached on the strategy, so revalidation no
        // longer re-hashes the arc vector on every cached run.
        cache.revalidate_scoped(db, &self.footprint, self.strategy.fingerprint());
        if let Some((answer, cost)) = cache.get(&key) {
            // Intentional clone: the memoized answer stays owned by the
            // cache; handing out a borrow would pin the cache for the
            // caller's whole use of the result.
            return Ok((answer.clone(), *cost));
        }
        let answer = self.run_into(query, db, scratch)?;
        let cost = scratch.cost();
        // Intentional clone: one per cache *miss* (amortized away by the
        // hits the memo exists for).
        cache.insert(key, answer.clone(), cost);
        Ok((answer, cost))
    }

    /// Classifies up to [`MAX_LANES`] queries into one [`ContextBatch`]
    /// plane, lane `l` holding query `l`'s Note-2 context. `staging` is
    /// a reusable scalar buffer. The batch is resized to exactly
    /// `queries.len()` lanes (and the smallest plane width that fits
    /// them).
    ///
    /// # Errors
    /// [`GraphError::BatchShape`] if more than [`MAX_LANES`] queries are
    /// given; [`GraphError::InvalidStrategy`] if any query does not
    /// match the compiled form (the batch is left partially filled —
    /// callers wanting per-query error isolation should classify with
    /// [`classify_context_into`] themselves).
    pub fn classify_batch_into(
        &self,
        queries: &[Atom],
        db: &Database,
        batch: &mut ContextBatch,
        staging: &mut Context,
    ) -> Result<(), GraphError> {
        if queries.len() > MAX_LANES {
            return Err(GraphError::BatchShape(format!(
                "{} queries exceed the {MAX_LANES}-lane plane",
                queries.len()
            )));
        }
        batch.reset(self.compiled.graph.arc_count(), queries.len());
        for (lane, query) in queries.iter().enumerate() {
            classify_context_into(self.compiled, query, db, staging)?;
            batch.set_lane(lane, staging);
        }
        Ok(())
    }

    /// Executes one already-classified plane and appends each lane's
    /// `(answer, cost)` to `out`, in lane order. `queries` must be the
    /// same slice the plane was classified from (lane `l` ↔ query `l`);
    /// it is consulted only to reconstruct witnesses.
    ///
    /// Results are bit-identical to [`run_into`](Self::run_into) on each
    /// query separately: the program path inherits the batch executor's
    /// determinism contract, and the fallback path (a strategy that does
    /// not lower) runs the interpreter per lane.
    ///
    /// # Errors
    /// [`GraphError::BatchShape`] if `queries` and the plane disagree on
    /// lane count or the plane was built for a different graph.
    pub fn run_classified_batch(
        &self,
        queries: &[Atom],
        db: &Database,
        batch: &ContextBatch,
        run: &mut BatchRun,
        scratch: &mut RunScratch,
        out: &mut Vec<(QueryAnswer, f64)>,
    ) -> Result<(), GraphError> {
        if queries.len() != batch.lanes() {
            return Err(GraphError::BatchShape(format!(
                "{} queries for a {}-lane plane",
                queries.len(),
                batch.lanes()
            )));
        }
        if batch.arc_count() != self.compiled.graph.arc_count() {
            return Err(GraphError::BatchShape(format!(
                "plane covers {} arcs but the graph covers {}",
                batch.arc_count(),
                self.compiled.graph.arc_count()
            )));
        }
        match &self.program {
            Some(p) => {
                execute_batch(p, batch, batch.active_mask(), run);
                for (lane, query) in queries.iter().enumerate() {
                    let answer = match run.outcome(lane) {
                        RunOutcome::Succeeded(arc) => {
                            QueryAnswer::Yes(self.witness(arc, query, db))
                        }
                        RunOutcome::Exhausted => QueryAnswer::No,
                    };
                    out.push((answer, run.cost(lane)));
                }
            }
            None => {
                for (lane, query) in queries.iter().enumerate() {
                    batch.extract_lane(lane, scratch.partial_mut());
                    let outcome =
                        execute_partial_into(&self.compiled.graph, &self.strategy, scratch);
                    let answer = match outcome {
                        RunOutcome::Succeeded(arc) => {
                            QueryAnswer::Yes(self.witness(arc, query, db))
                        }
                        RunOutcome::Exhausted => QueryAnswer::No,
                    };
                    out.push((answer, scratch.cost()));
                }
            }
        }
        Ok(())
    }

    /// Processes any number of queries through the bit-parallel batch
    /// path, up to [`MAX_LANES`] at a time (each chunk gets the smallest
    /// plane width that fits it): classify a chunk into `s.batch`,
    /// execute the plane, append each `(answer, cost)` to `out` in
    /// query order. `out` is cleared first. After return, `s` holds the
    /// *last* chunk's plane and result planes.
    ///
    /// # Errors
    /// As for [`classify_batch_into`](Self::classify_batch_into); `out`
    /// keeps the chunks completed before the failing one.
    pub fn run_batch_into(
        &self,
        queries: &[Atom],
        db: &Database,
        s: &mut BatchScratch,
        out: &mut Vec<(QueryAnswer, f64)>,
    ) -> Result<(), GraphError> {
        out.clear();
        for chunk in queries.chunks(MAX_LANES) {
            self.classify_batch_into(chunk, db, &mut s.batch, &mut s.staging)?;
            self.run_classified_batch(chunk, db, &s.batch, &mut s.run, &mut s.scratch, out)?;
        }
        Ok(())
    }

    /// Reconstructs the witnessing ground atom for a successful
    /// retrieval arc of `query`'s run — public so serving layers that
    /// execute through the raw batch planes can turn a
    /// [`RunOutcome::Succeeded`] arc back into an answer atom.
    ///
    /// # Panics
    /// Invariant assert: `arc` must be a retrieval arc that actually
    /// succeeded for `query` under `db` (i.e. came out of a run on the
    /// matching context). Passing an arbitrary arc may panic.
    pub fn witness(&self, arc: ArcId, query: &Atom, db: &Database) -> Atom {
        let constants = self.compiled.form.bound_constants(query);
        match self.compiled.binding(arc) {
            ArcBinding::Retrieval { predicate, pattern, .. } => {
                let atom = instantiate_pattern(*predicate, pattern, &constants);
                if atom.is_ground() {
                    atom
                } else {
                    let sub = db
                        .matches(&atom, &Substitution::new())
                        .into_iter()
                        .next()
                        .expect("retrieval succeeded, so a match exists");
                    sub.apply(&atom)
                }
            }
            ArcBinding::Reduction { .. } => {
                unreachable!("success nodes are reached via retrieval arcs")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_datalog::parser::{parse_program, parse_query, parse_query_form};
    use qpl_datalog::topdown::TopDown;
    use qpl_datalog::SymbolTable;
    use qpl_graph::compile::{compile, CompileOptions};

    const FIGURE1: &str = "instructor(X) :- prof(X).\n\
                           instructor(X) :- grad(X).\n\
                           prof(russ). grad(manolis).";

    fn setup(kb: &str, form: &str) -> (SymbolTable, CompiledGraph, Database) {
        let mut t = SymbolTable::new();
        let p = parse_program(kb, &mut t).unwrap();
        let qf = parse_query_form(form, &mut t).unwrap();
        let cg = compile(&p.rules, &qf, &t, &CompileOptions::default()).unwrap();
        (t, cg, p.facts)
    }

    #[test]
    fn figure1_answers_and_costs() {
        let (mut t, cg, db) = setup(FIGURE1, "instructor(b)");
        let qp = QueryProcessor::left_to_right(&cg);

        // instructor(russ): prof-first finds it on the first path, cost 2.
        let run = qp.run(&parse_query("instructor(russ)", &mut t).unwrap(), &db).unwrap();
        assert!(run.answer.is_yes());
        assert_eq!(run.trace.cost, 2.0);

        // instructor(manolis): prof fails first, cost 4 (the paper's c(Θ₁,I₁)).
        let run = qp.run(&parse_query("instructor(manolis)", &mut t).unwrap(), &db).unwrap();
        assert!(run.answer.is_yes());
        assert_eq!(run.trace.cost, 4.0);

        // instructor(fred): both fail, answer no, cost 4.
        let run = qp.run(&parse_query("instructor(fred)", &mut t).unwrap(), &db).unwrap();
        assert_eq!(run.answer, QueryAnswer::No);
        assert_eq!(run.trace.cost, 4.0);
    }

    #[test]
    fn alternative_strategy_changes_cost_not_answer() {
        let (mut t, cg, db) = setup(FIGURE1, "instructor(b)");
        let g = &cg.graph;
        // Build grad-first: reverse the root's child order.
        let mut orders: Vec<Vec<ArcId>> = g.node_ids().map(|n| g.children(n).to_vec()).collect();
        orders[g.root().index()].reverse();
        let grad_first = Strategy::dfs_from_orders(g, &orders).unwrap();
        let qp = QueryProcessor::new(&cg, grad_first);

        let run = qp.run(&parse_query("instructor(manolis)", &mut t).unwrap(), &db).unwrap();
        assert!(run.answer.is_yes());
        assert_eq!(run.trace.cost, 2.0, "the paper's c(Θ₂, I₁) = 2");

        let run = qp.run(&parse_query("instructor(russ)", &mut t).unwrap(), &db).unwrap();
        assert!(run.answer.is_yes());
        assert_eq!(run.trace.cost, 4.0, "the paper's c(Θ₂, I₂) = 4");
    }

    #[test]
    fn witness_has_bindings_for_free_positions() {
        let kb = "reaches(X, Y) :- direct(X, Y). direct(hub, spoke1). direct(hub, spoke2).";
        let (mut t, cg, db) = setup(kb, "reaches(b,f)");
        let qp = QueryProcessor::left_to_right(&cg);
        let run = qp.run(&parse_query("reaches(hub, Z)", &mut t).unwrap(), &db).unwrap();
        match run.answer {
            QueryAnswer::Yes(atom) => {
                assert!(atom.is_ground());
                let s = atom.display(&t).to_string();
                assert!(s == "direct(hub, spoke1)" || s == "direct(hub, spoke2)", "{s}");
            }
            QueryAnswer::No => panic!("expected a witness"),
        }
    }

    #[test]
    fn guarded_rule_blocks_other_constants() {
        let kb = "instructor(X) :- grad(X).\n\
                  grad(X) :- enrolled(X).\n\
                  grad(fred) :- admitted(fred, Y).\n\
                  enrolled(manolis). admitted(fred, toronto).";
        let (mut t, cg, db) = setup(kb, "instructor(b)");
        // For a non-fred query, the guarded reduction must be blocked.
        let ctx = classify_context(&cg, &parse_query("instructor(manolis)", &mut t).unwrap(), &db)
            .unwrap();
        let guarded_arc = cg
            .graph
            .arc_ids()
            .find(|&a| matches!(cg.binding(a), ArcBinding::Reduction { guards, .. } if !guards.is_empty()))
            .unwrap();
        assert!(ctx.is_blocked(guarded_arc));
        // For fred, it is open and the admitted(fred, _) retrieval succeeds.
        let qp = QueryProcessor::left_to_right(&cg);
        let run = qp.run(&parse_query("instructor(fred)", &mut t).unwrap(), &db).unwrap();
        assert!(run.answer.is_yes());
    }

    #[test]
    fn mismatched_query_rejected() {
        let (mut t, cg, db) = setup(FIGURE1, "instructor(b)");
        let qp = QueryProcessor::left_to_right(&cg);
        let err = qp.run(&parse_query("prof(russ)", &mut t).unwrap(), &db);
        assert!(err.is_err());
        let err = qp.run(&parse_query("instructor(X)", &mut t).unwrap(), &db);
        assert!(err.is_err(), "free variable where the form demands bound");
    }

    #[test]
    fn agreement_with_sld_oracle_on_figure1() {
        let (mut t, cg, db) = setup(FIGURE1, "instructor(b)");
        let mut prog_table = SymbolTable::new();
        let p = parse_program(FIGURE1, &mut prog_table).unwrap();
        let qp = QueryProcessor::left_to_right(&cg);
        for name in ["russ", "manolis", "fred", "ghost"] {
            let q = parse_query(&format!("instructor({name})"), &mut t).unwrap();
            let graph_answer = qp.run(&q, &db).unwrap().answer.is_yes();
            let q2 = parse_query(&format!("instructor({name})"), &mut prog_table).unwrap();
            let oracle = TopDown::new(&p.rules, &p.facts).provable(&q2).unwrap();
            assert_eq!(graph_answer, oracle, "disagreement on {name}");
        }
    }

    #[test]
    fn agreement_with_sld_oracle_on_layered_kb() {
        // Deeper chain with a guarded constant rule and a free-position
        // retrieval.
        let kb = "top(X) :- mid(X).\n\
                  top(X) :- alt(X).\n\
                  mid(X) :- base(X).\n\
                  mid(zed) :- special(zed, W).\n\
                  base(a). base(b). alt(c). special(zed, k1).";
        let (mut t, cg, db) = setup(kb, "top(b)");
        let mut pt = SymbolTable::new();
        let p = parse_program(kb, &mut pt).unwrap();
        let qp = QueryProcessor::left_to_right(&cg);
        for name in ["a", "b", "c", "zed", "nobody"] {
            let q = parse_query(&format!("top({name})"), &mut t).unwrap();
            let got = qp.run(&q, &db).unwrap().answer.is_yes();
            let q2 = parse_query(&format!("top({name})"), &mut pt).unwrap();
            let want = TopDown::new(&p.rules, &p.facts).provable(&q2).unwrap();
            assert_eq!(got, want, "disagreement on {name}");
        }
    }

    #[test]
    fn every_strategy_gives_same_answer() {
        let (mut t, cg, db) = setup(FIGURE1, "instructor(b)");
        let strategies = qpl_graph::strategy::enumerate_all(&cg.graph, 100).unwrap();
        for name in ["russ", "manolis", "fred"] {
            let q = parse_query(&format!("instructor({name})"), &mut t).unwrap();
            let answers: Vec<bool> = strategies
                .iter()
                .map(|s| QueryProcessor::new(&cg, s.clone()).run(&q, &db).unwrap().answer.is_yes())
                .collect();
            assert!(
                answers.windows(2).all(|w| w[0] == w[1]),
                "strategies disagree on {name}: {answers:?}"
            );
        }
    }

    #[test]
    fn repeated_head_variable_answers_match_oracle() {
        // Regression for the Free-then-QueryArg merge in the compiler:
        // p(Y, c) must be NO when q(c) is absent, even though q(a) holds.
        let kb = "p(X, X) :- q(X). q(a).";
        let (mut t, cg, db) = setup(kb, "p(f,b)");
        let mut pt = SymbolTable::new();
        let prog = parse_program(kb, &mut pt).unwrap();
        let qp = QueryProcessor::left_to_right(&cg);
        for (name, want) in [("a", true), ("c", false)] {
            let q = parse_query(&format!("p(Y, {name})"), &mut t).unwrap();
            let got = qp.run(&q, &db).unwrap().answer.is_yes();
            assert_eq!(got, want, "engine answer for p(Y, {name})");
            let q2 = parse_query(&format!("p(Y, {name})"), &mut pt).unwrap();
            let oracle = TopDown::new(&prog.rules, &prog.facts).provable(&q2).unwrap();
            assert_eq!(got, oracle, "oracle agreement for {name}");
        }
    }

    #[test]
    fn lazy_run_matches_eager_run() {
        // Identical traces (events, cost, outcome) and answers on every
        // Figure-1 query, for every enumerable strategy.
        let (mut t, cg, db) = setup(FIGURE1, "instructor(b)");
        let strategies = qpl_graph::strategy::enumerate_all(&cg.graph, 100).unwrap();
        for name in ["russ", "manolis", "fred"] {
            let q = parse_query(&format!("instructor({name})"), &mut t).unwrap();
            for s in &strategies {
                let qp = QueryProcessor::new(&cg, s.clone());
                let eager = qp.run(&q, &db).unwrap();
                let lazy = qp.run_lazy(&q, &db).unwrap();
                assert_eq!(eager.trace, lazy.trace, "{name} via {}", s.display(&cg.graph));
                assert_eq!(eager.answer, lazy.answer);
            }
        }
    }

    #[test]
    fn lazy_run_touches_only_attempted_arcs() {
        // instructor(russ) with prof-first: success on the first path —
        // the lazy context must not have probed the grad retrieval (it
        // reads as open regardless of the database).
        let (mut t, cg, db) = setup(FIGURE1, "instructor(b)");
        let qp = QueryProcessor::left_to_right(&cg);
        let q = parse_query("instructor(russ)", &mut t).unwrap();
        let lazy = qp.run_lazy(&q, &db).unwrap();
        assert_eq!(lazy.trace.events.len(), 2);
        let grad_retrieval =
            cg.graph.retrievals().find(|&a| cg.graph.arc(a).label.contains("grad")).unwrap();
        assert!(!lazy.context.is_blocked(grad_retrieval), "never probed → left open");
        // The eager run, by contrast, classifies everything: grad(russ)
        // is absent so the arc is blocked there.
        let eager = qp.run(&q, &db).unwrap();
        assert!(eager.context.is_blocked(grad_retrieval));
    }

    #[test]
    fn observed_run_is_identical_to_plain_run() {
        let (mut t, cg, db) = setup(FIGURE1, "instructor(b)");
        let qp = QueryProcessor::left_to_right(&cg);
        let mut sink = qpl_obs::MemorySink::new();
        for name in ["russ", "manolis", "fred"] {
            let q = parse_query(&format!("instructor({name})"), &mut t).unwrap();
            let mut s1 = RunScratch::new(&cg.graph);
            let mut s2 = RunScratch::new(&cg.graph);
            let plain = qp.run_into(&q, &db, &mut s1).unwrap();
            let observed = qp.run_into_observed(&q, &db, &mut s2, &mut sink).unwrap();
            assert_eq!(plain, observed, "telemetry must not change answers");
            assert_eq!(s1.to_trace(), s2.to_trace(), "telemetry must not change traces");
        }
        assert_eq!(sink.counter_total("engine.qp.queries"), 3);
        assert_eq!(sink.counter_total("engine.qp.yes_answers"), 2);
        assert_eq!(sink.span_stats("engine.qp.run").unwrap().count, 3);
        // russ: 2 arcs; manolis: 4; fred: 4.
        assert_eq!(sink.counter_total("graph.run.arcs_attempted"), 10);
        assert_eq!(sink.counter_total("graph.run.succeeded"), 2);
        assert_eq!(sink.counter_total("graph.run.exhausted"), 1);
    }

    #[test]
    fn observed_cached_run_reports_costs() {
        let (mut t, cg, db) = setup(FIGURE1, "instructor(b)");
        let qp = QueryProcessor::left_to_right(&cg);
        let mut cache = RunCache::new();
        let mut scratch = RunScratch::new(&cg.graph);
        let mut sink = qpl_obs::MemorySink::new();
        let q = parse_query("instructor(manolis)", &mut t).unwrap();
        for _ in 0..3 {
            let (answer, cost) =
                qp.run_cost_cached_observed(&q, &db, &mut cache, &mut scratch, &mut sink).unwrap();
            assert!(answer.is_yes());
            assert_eq!(cost, 4.0);
        }
        cache.emit_to(&mut sink);
        assert_eq!(sink.counter_total("engine.qp.queries"), 3);
        assert_eq!(sink.value_stats("engine.qp.cost").unwrap().sum, 12.0);
        assert_eq!(sink.counter_total("engine.run_cache.hits"), 2);
        assert_eq!(sink.counter_total("engine.run_cache.misses"), 1);
    }

    #[test]
    fn batch_path_is_bit_identical_to_scalar_runs() {
        // Every enumerable Figure-1 strategy, program path and
        // interpreter fallback alike: answers equal, costs equal to the
        // bit, witnesses equal.
        let (mut t, cg, db) = setup(FIGURE1, "instructor(b)");
        let names = ["russ", "manolis", "fred", "ghost"];
        let queries: Vec<Atom> = names
            .iter()
            .map(|n| parse_query(&format!("instructor({n})"), &mut t).unwrap())
            .collect();
        let mut strategies = qpl_graph::strategy::enumerate_all(&cg.graph, 100).unwrap();
        // A relaxed, non-path-form sequence the program compiler
        // rejects: both reductions up front. It still executes under the
        // interpreter, so it pins the fallback arm of the batch path.
        let arcs: Vec<ArcId> = cg.graph.arc_ids().collect();
        strategies.push(
            Strategy::from_arcs_relaxed(&cg.graph, vec![arcs[0], arcs[2], arcs[1], arcs[3]])
                .unwrap(),
        );
        let mut saw_fallback = false;
        for s in &strategies {
            let qp = QueryProcessor::new(&cg, s.clone());
            saw_fallback |= qp.program().is_none();
            let mut bs = BatchScratch::new(&cg.graph);
            let mut out = Vec::new();
            qp.run_batch_into(&queries, &db, &mut bs, &mut out).unwrap();
            assert_eq!(out.len(), queries.len());
            let mut scratch = RunScratch::new(&cg.graph);
            for (q, (answer, cost)) in queries.iter().zip(&out) {
                let scalar = qp.run_into(q, &db, &mut scratch).unwrap();
                assert_eq!(answer, &scalar, "{} via {}", q.display(&t), s.display(&cg.graph));
                assert_eq!(
                    cost.to_bits(),
                    scratch.cost().to_bits(),
                    "{} via {}",
                    q.display(&t),
                    s.display(&cg.graph)
                );
            }
        }
        assert!(saw_fallback, "no strategy exercised the interpreter fallback");
    }

    #[test]
    fn run_batch_into_chunks_past_one_plane() {
        let (mut t, cg, db) = setup(FIGURE1, "instructor(b)");
        let qp = QueryProcessor::left_to_right(&cg);
        let base = ["russ", "manolis", "fred"];
        let queries: Vec<Atom> = (0..600)
            .map(|i| parse_query(&format!("instructor({})", base[i % 3]), &mut t).unwrap())
            .collect();
        let mut bs = BatchScratch::new(&cg.graph);
        let mut out = Vec::new();
        qp.run_batch_into(&queries, &db, &mut bs, &mut out).unwrap();
        assert_eq!(out.len(), 600);
        // Last chunk: 600 = 512 + 88 lanes (width 2).
        assert_eq!(bs.batch().lanes(), 88);
        assert_eq!(bs.batch().width(), 2);
        let mut scratch = RunScratch::new(&cg.graph);
        for (q, (answer, cost)) in queries.iter().zip(&out) {
            let scalar = qp.run_into(q, &db, &mut scratch).unwrap();
            assert_eq!(answer, &scalar);
            assert_eq!(cost.to_bits(), scratch.cost().to_bits());
        }
    }

    #[test]
    fn pool_assembly_matches_whole_plane_classification() {
        let (mut t, cg, db) = setup(FIGURE1, "instructor(b)");
        let qp = QueryProcessor::left_to_right(&cg);
        let base = ["russ", "manolis", "fred", "ben"];
        let queries: Vec<Atom> = (0..7)
            .map(|i| parse_query(&format!("instructor({})", base[i % 4]), &mut t).unwrap())
            .collect();

        // Reference: the all-or-nothing whole-plane path.
        let mut whole = BatchScratch::new(&cg.graph);
        let mut expected = Vec::new();
        qp.classify_batch_into(&queries, &db, &mut whole.batch, &mut whole.staging).unwrap();
        qp.run_classified_batch(
            &queries,
            &db,
            &whole.batch,
            &mut whole.run,
            &mut whole.scratch,
            &mut expected,
        )
        .unwrap();

        // Lane-at-a-time pool assembly (the serving shard's path).
        let mut s = BatchScratch::new(&cg.graph);
        for (lane, q) in queries.iter().enumerate() {
            classify_context_into(&cg, q, &db, s.pool_context(&cg.graph, lane)).unwrap();
        }
        s.assemble_pool_plane(cg.graph.arc_count(), queries.len());
        let mut out = Vec::new();
        let (batch, run, scratch) = s.plane_parts_mut();
        qp.run_classified_batch(&queries, &db, batch, run, scratch, &mut out).unwrap();

        assert_eq!(out.len(), expected.len());
        for ((a, c), (ea, ec)) in out.iter().zip(&expected) {
            assert_eq!(a, ea);
            assert_eq!(c.to_bits(), ec.to_bits(), "pool path is bit-identical");
        }
        // The assembled plane is what an adaptation loop would observe.
        assert_eq!(s.batch().lanes(), queries.len());
    }

    #[test]
    fn batch_shape_errors_are_typed() {
        let (mut t, cg, db) = setup(FIGURE1, "instructor(b)");
        let qp = QueryProcessor::left_to_right(&cg);
        let q = parse_query("instructor(russ)", &mut t).unwrap();
        let queries = vec![q; MAX_LANES + 1];
        let mut batch = qpl_graph::batch::ContextBatch::new(cg.graph.arc_count(), 1);
        let mut staging = Context::all_open(&cg.graph);
        assert!(matches!(
            qp.classify_batch_into(&queries, &db, &mut batch, &mut staging),
            Err(GraphError::BatchShape(_))
        ));
        // Lane-count mismatch between queries and plane.
        qp.classify_batch_into(&queries[..3], &db, &mut batch, &mut staging).unwrap();
        let mut run = qpl_graph::batch::BatchRun::new();
        let mut scratch = RunScratch::new(&cg.graph);
        let mut out = Vec::new();
        assert!(matches!(
            qp.run_classified_batch(&queries[..2], &db, &batch, &mut run, &mut scratch, &mut out),
            Err(GraphError::BatchShape(_))
        ));
    }

    #[test]
    fn set_strategy_swaps_behavior() {
        let (mut t, cg, db) = setup(FIGURE1, "instructor(b)");
        let mut qp = QueryProcessor::left_to_right(&cg);
        let q = parse_query("instructor(manolis)", &mut t).unwrap();
        assert_eq!(qp.run(&q, &db).unwrap().trace.cost, 4.0);
        let g = &cg.graph;
        let mut orders: Vec<Vec<ArcId>> = g.node_ids().map(|n| g.children(n).to_vec()).collect();
        orders[g.root().index()].reverse();
        qp.set_strategy(Strategy::dfs_from_orders(g, &orders).unwrap());
        assert_eq!(qp.run(&q, &db).unwrap().trace.cost, 2.0);
    }
}
