//! Dynamic batcher + admission controller: a bounded FIFO of jobs that
//! coalesces into 64..=512-lane planes, sized by queue depth.
//!
//! The batcher is a *synchronous state machine* — it never touches a
//! clock or a thread by itself. Callers pass `Instant`s in, which keeps
//! every transition deterministic and directly testable (the proptest
//! in `tests/batcher_props.rs` drives it with synthetic clocks).
//!
//! ## State machine
//!
//! ```text
//!          offer(job, now)                    cut_plane()
//! client ──────────────────▶ [FIFO queue] ──────────────────▶ executor
//!              │                  │
//!              │ queue full       │ ready(now, max_wait) when
//!              ▼                  │   · ≥ LANES lanes queued (a full
//!          Err(job)               │     plane exists), or
//!        ("overloaded")           │   · the oldest job has waited
//!                                 ▼     ≥ max_wait (flush deadline)
//! ```
//!
//! * **Admission** is lane-denominated: a queue holds at most
//!   `cap_lanes` query lanes summed over jobs. [`Batcher::offer`]
//!   returns the job back (`Err`) when it does not fit — the caller
//!   sheds it with an `overloaded` response. A job is never partially
//!   admitted.
//! * **Readiness** ([`Batcher::ready`]) fires on *fullness* (≥
//!   [`LANES`] lanes queued) or *staleness* (the oldest job has waited
//!   `max_wait`), so single queries are never starved behind an
//!   unfilled plane.
//! * **Cutting** ([`Batcher::cut_plane`]) pops whole jobs FIFO until
//!   the next job would overflow the plane. Jobs are never split across
//!   planes (each is at most [`LANES`] lanes wide, enforced at request
//!   parse time), so a batch request's lanes always execute together.
//!   The plane's lane capacity is caller-chosen: under load the server
//!   passes a wider capacity ([`plane_width_for_depth`] × [`LANES`])
//!   so one cut drains what would otherwise take up to eight.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use qpl_graph::batch::{width_for_lanes, LANES, MAX_LANES};

/// Plane width (in 64-lane words) to cut for a queue currently holding
/// `lanes_queued` lanes: the narrowest power-of-two plane that drains
/// the whole queue in one cut, capped at [`MAX_LANES`] total lanes.
///
/// Depth 0..=64 → 1, 65..=128 → 2, 129..=256 → 4, 257+ → 8. A lightly
/// loaded shard keeps cutting 64-lane planes (identical latency profile
/// to the fixed-width batcher); a backlogged shard amortizes program
/// dispatch over up to 512 lanes per cut.
pub fn plane_width_for_depth(lanes_queued: usize) -> usize {
    width_for_lanes(lanes_queued.clamp(1, MAX_LANES))
}

/// How many plane lanes a queued job occupies (its query count).
pub trait LaneWeight {
    /// Lanes this job needs, `1..=LANES`.
    fn lanes(&self) -> usize;
}

/// Bounded FIFO of jobs with lane-denominated admission and
/// deadline-or-fullness plane cutting.
#[derive(Debug)]
pub struct Batcher<T> {
    queue: VecDeque<(T, Instant)>,
    lanes_queued: usize,
    cap_lanes: usize,
    shed: u64,
    admitted: u64,
}

impl<T: LaneWeight> Batcher<T> {
    /// An empty batcher admitting at most `cap_lanes` queued lanes.
    pub fn new(cap_lanes: usize) -> Self {
        Self { queue: VecDeque::new(), lanes_queued: 0, cap_lanes, shed: 0, admitted: 0 }
    }

    /// Admits `job` (stamped with arrival time `now`) or sheds it.
    ///
    /// # Errors
    /// Returns the job back when admitting it would exceed the lane
    /// cap; the caller owes the client an `overloaded` response.
    pub fn offer(&mut self, job: T, now: Instant) -> Result<(), T> {
        let w = job.lanes();
        debug_assert!(
            (1..=LANES).contains(&w),
            "jobs are 1..=LANES lanes wide (enforced at request parse)"
        );
        if self.lanes_queued + w > self.cap_lanes {
            self.shed += 1;
            return Err(job);
        }
        self.lanes_queued += w;
        self.admitted += 1;
        self.queue.push_back((job, now));
        Ok(())
    }

    /// Whether a plane should be cut now: a full plane is queued, or
    /// the oldest job has waited at least `max_wait`.
    pub fn ready(&self, now: Instant, max_wait: Duration) -> bool {
        if self.lanes_queued >= LANES {
            return true;
        }
        match self.queue.front() {
            Some((_, arrived)) => now.duration_since(*arrived) >= max_wait,
            None => false,
        }
    }

    /// When the oldest queued job hits its flush deadline (`None` when
    /// empty) — what an executor sleeps until.
    pub fn deadline(&self, max_wait: Duration) -> Option<Instant> {
        self.queue.front().map(|(_, arrived)| *arrived + max_wait)
    }

    /// Pops whole jobs FIFO into `out` (cleared first) until the plane
    /// is full or the next job would not fit. `max_lanes` is the
    /// plane's lane capacity (clamped to `LANES..=MAX_LANES`; the
    /// server passes [`plane_width_for_depth`]` × LANES`). Returns the
    /// lane total. Empty queue → 0 lanes, empty `out`.
    pub fn cut_plane(&mut self, max_lanes: usize, out: &mut Vec<(T, Instant)>) -> usize {
        let cap = max_lanes.clamp(LANES, MAX_LANES);
        out.clear();
        let mut lanes = 0usize;
        while let Some((job, _)) = self.queue.front() {
            let w = job.lanes();
            if lanes + w > cap {
                break;
            }
            lanes += w;
            out.push(self.queue.pop_front().expect("front exists"));
            if lanes == cap {
                break;
            }
        }
        self.lanes_queued -= lanes;
        lanes
    }

    /// Jobs currently queued.
    pub fn jobs_queued(&self) -> usize {
        self.queue.len()
    }

    /// Lanes currently queued (summed over jobs).
    pub fn lanes_queued(&self) -> usize {
        self.lanes_queued
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Jobs shed since construction.
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// Jobs admitted since construction.
    pub fn admitted_count(&self) -> u64 {
        self.admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct J(usize);
    impl LaneWeight for J {
        fn lanes(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn admission_sheds_past_the_lane_cap() {
        let t0 = Instant::now();
        let mut b = Batcher::new(10);
        assert!(b.offer(J(6), t0).is_ok());
        assert!(b.offer(J(4), t0).is_ok());
        let rejected = b.offer(J(1), t0);
        assert!(rejected.is_err(), "cap is lanes, not jobs");
        assert_eq!(b.shed_count(), 1);
        assert_eq!(b.admitted_count(), 2);
        assert_eq!(b.lanes_queued(), 10);
    }

    #[test]
    fn readiness_fires_on_fullness_or_staleness() {
        let t0 = Instant::now();
        let wait = Duration::from_millis(5);
        let mut b = Batcher::new(1000);
        assert!(!b.ready(t0, wait), "empty queue is never ready");
        b.offer(J(1), t0).unwrap();
        assert!(!b.ready(t0, wait), "one fresh lane is not ready");
        assert!(b.ready(t0 + wait, wait), "stale lane flushes");
        assert_eq!(b.deadline(wait), Some(t0 + wait));
        for _ in 0..63 {
            b.offer(J(1), t0).unwrap();
        }
        assert!(b.ready(t0, wait), "full plane is ready immediately");
    }

    #[test]
    fn cut_plane_pops_whole_jobs_up_to_64_lanes() {
        let t0 = Instant::now();
        let mut b = Batcher::new(1000);
        b.offer(J(40), t0).unwrap();
        b.offer(J(20), t0).unwrap();
        b.offer(J(10), t0).unwrap(); // would overflow: stays queued
        b.offer(J(4), t0).unwrap(); // FIFO: not reordered around the 10
        let mut out = Vec::new();
        assert_eq!(b.cut_plane(LANES, &mut out), 60);
        assert_eq!(out.len(), 2, "jobs are never split and never reordered");
        assert_eq!(b.lanes_queued(), 14);
        assert_eq!(b.cut_plane(LANES, &mut out), 14);
        assert!(b.is_empty());
        assert_eq!(b.cut_plane(LANES, &mut out), 0);
    }

    #[test]
    fn exact_fill_stops_at_the_plane_boundary() {
        let t0 = Instant::now();
        let mut b = Batcher::new(1000);
        for _ in 0..70 {
            b.offer(J(1), t0).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(b.cut_plane(LANES, &mut out), LANES);
        assert_eq!(out.len(), LANES);
        assert_eq!(b.lanes_queued(), 6);
    }

    #[test]
    fn wide_planes_drain_a_backlog_in_one_cut() {
        let t0 = Instant::now();
        let mut b = Batcher::new(1000);
        for _ in 0..5 {
            b.offer(J(60), t0).unwrap();
        }
        let width = plane_width_for_depth(b.lanes_queued());
        assert_eq!(width, 8, "300 queued lanes call for the widest plane");
        let mut out = Vec::new();
        assert_eq!(b.cut_plane(width * LANES, &mut out), 300);
        assert!(b.is_empty(), "one wide cut drains the whole backlog");
    }

    #[test]
    fn plane_width_tracks_queue_depth() {
        assert_eq!(plane_width_for_depth(0), 1);
        assert_eq!(plane_width_for_depth(1), 1);
        assert_eq!(plane_width_for_depth(64), 1);
        assert_eq!(plane_width_for_depth(65), 2);
        assert_eq!(plane_width_for_depth(128), 2);
        assert_eq!(plane_width_for_depth(129), 4);
        assert_eq!(plane_width_for_depth(256), 4);
        assert_eq!(plane_width_for_depth(257), 8);
        assert_eq!(plane_width_for_depth(10_000), 8, "capped at MAX_LANES");
    }

    #[test]
    fn cut_plane_clamps_the_capacity_to_the_plane_range() {
        let t0 = Instant::now();
        let mut b = Batcher::new(2000);
        for _ in 0..20 {
            b.offer(J(64), t0).unwrap();
        }
        let mut out = Vec::new();
        // Below LANES clamps up to one plane; above MAX_LANES clamps
        // down to the widest plane.
        assert_eq!(b.cut_plane(0, &mut out), LANES);
        assert_eq!(b.cut_plane(usize::MAX, &mut out), MAX_LANES);
    }
}
