//! E7 — Theorem 2: PAO's sample complexity and ε-guarantee.
//!
//! Paper claims: sampling each retrieval `m(dᵢ) = ⌈2(nF¬[dᵢ]/ε)²ln(2n/δ)⌉`
//! times makes `C[Θ_pao] ≤ C[Θ_opt] + ε` with probability `≥ 1 − δ`.
//! We tabulate the Equation 7 counts across (ε, δ, n) and measure the
//! achieved success rate of full PAO runs (with capped counts the
//! guarantee is still met comfortably on these graphs — the bound is a
//! worst case).

use crate::report::{fm, Report};
use qpl_core::{optimal_strategy, Pao, PaoConfig};
use qpl_engine::{par_map_indexed, ParConfig};
use qpl_graph::expected::ContextDistribution;
use qpl_stats::sample::theorem2_samples;
use qpl_workload::generator::{random_retrieval_model, random_tree_with_retrievals, TreeParams};
use qpl_workload::university;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E7 and returns the report.
pub fn run(seed: u64) -> Report {
    let mut r = Report::new("E7: Theorem 2 — Equation 7 sample complexity and the ε-guarantee");

    // Equation 7 counts on G_A (n = 2, F¬ = 2 for both retrievals).
    let u = university();
    let g_a = u.graph().clone();
    let mut rows = Vec::new();
    for eps in [2.0, 1.0, 0.5, 0.25] {
        for delta in [0.1, 0.05] {
            let m = theorem2_samples(g_a.f_not(u.d_p()), eps, delta, 2);
            rows.push(vec![fm(eps, 2), fm(delta, 2), m.to_string()]);
        }
    }
    r.table("Equation 7 on G_A: m(d) per retrieval (F¬ = 2, n = 2)", &["ε", "δ", "m(d)"], rows);

    // Empirical guarantee on random trees.
    let (eps, delta) = (1.0f64, 0.1f64);
    let runs = 60u64;
    let cap = 1500u64;
    // Trials are pure functions of t (per-trial seeds), so they fan out
    // across workers; collecting in t order keeps the report identical
    // to the old serial loop.
    let regrets: Vec<f64> = par_map_indexed(runs as usize, &ParConfig::auto(), |ti| {
        let t = ti as u64;
        let mut gen_rng = StdRng::seed_from_u64(seed + t);
        let g = random_tree_with_retrievals(&mut gen_rng, &TreeParams::default(), 2, 5);
        let truth = random_retrieval_model(&mut gen_rng, &g, (0.05, 0.95));
        let (_, c_opt) = optimal_strategy(&g, &truth, 2_000_000).expect("small trees");
        let mut pao =
            Pao::new(&g, PaoConfig::theorem2(eps, delta).with_sample_cap(cap)).expect("tree graph");
        let mut rng = StdRng::seed_from_u64(seed + 90_000 + t);
        // One Context buffer per trial: `sample_into` consumes the same
        // randomness as `sample`, so the stream is unchanged.
        let mut ctx = qpl_graph::Context::all_open(&g);
        while !pao.done() {
            truth.sample_into(&mut rng, &mut ctx);
            pao.observe(&g, &ctx);
        }
        let (strategy, _) = pao.finish(&g).expect("sampling done");
        let c_pao = truth.expected_cost(&g, &strategy);
        c_pao - c_opt
    });
    let achieved = regrets.iter().filter(|&&r| r <= eps + 1e-9).count() as u64;
    let mut regrets = regrets;
    regrets.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rate = achieved as f64 / runs as f64;
    r.table(
        format!("PAO runs on random trees (ε = {eps}, δ = {delta}, counts capped at {cap})")
            .as_str(),
        &["quantity", "value"],
        vec![
            vec!["runs".into(), runs.to_string()],
            vec![
                "achieved C[Θ_pao] ≤ C[Θ_opt] + ε".into(),
                format!("{} ({}%)", achieved, fm(100.0 * rate, 1)),
            ],
            vec!["required rate (1 − δ)".into(), fm(1.0 - delta, 2)],
            vec!["median regret".into(), fm(regrets[regrets.len() / 2], 4)],
            vec!["max regret".into(), fm(*regrets.last().expect("non-empty"), 4)],
        ],
    );

    let ok = rate >= 1.0 - delta;
    r.set_verdict(if ok {
        "REPRODUCED (guarantee met; Equation 7 counts grow as (nF¬/ε)²·ln(2n/δ))"
    } else {
        "MISMATCH (guarantee violated)"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_reproduces() {
        let r = super::run(707);
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
