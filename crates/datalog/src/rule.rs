//! Rules (definite clauses) and the rule base.
//!
//! A rule `h :- b₁, …, bₙ` is a function-free definite clause. The paper
//! mostly works with *disjunctive* rule bases (every body has exactly one
//! literal, Note 4); general conjunctive bodies are accepted here and
//! compile to hyper-arcs in `qpl-graph`.

use crate::error::DatalogError;
use crate::symbol::{Symbol, SymbolTable};
use crate::term::{Atom, Var};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifier of a rule within its [`RuleBase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u32);

impl RuleId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A definite clause `head :- body₁, …, bodyₙ` (facts have empty bodies
/// but are normally stored in the [`Database`](crate::Database) instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Consequent.
    pub head: Atom,
    /// Antecedents (conjunction).
    pub body: Vec<Atom>,
}

impl Rule {
    /// Constructs and validates a rule.
    ///
    /// # Errors
    /// Returns [`DatalogError::UnsafeRule`] if a head variable does not
    /// occur in the body (range restriction), which would allow deriving
    /// non-ground facts.
    pub fn new(head: Atom, body: Vec<Atom>) -> Result<Self, DatalogError> {
        let rule = Self { head, body };
        rule.validate()?;
        Ok(rule)
    }

    fn validate(&self) -> Result<(), DatalogError> {
        let body_vars: Vec<Var> = self.body.iter().flat_map(|a| a.variables()).collect();
        for v in self.head.variables() {
            if !body_vars.contains(&v) {
                return Err(DatalogError::UnsafeRule {
                    rule: format!("{:?}", self),
                    variable: format!("V{}", v.0),
                });
            }
        }
        Ok(())
    }

    /// Whether the body has exactly one literal (the paper's "simple
    /// disjunctive" rule shape, Note 4).
    pub fn is_disjunctive(&self) -> bool {
        self.body.len() == 1
    }

    /// Highest variable index used, plus one (for renaming apart).
    pub fn var_span(&self) -> u32 {
        std::iter::once(&self.head)
            .chain(self.body.iter())
            .flat_map(|a| a.variables())
            .map(|v| v.0 + 1)
            .max()
            .unwrap_or(0)
    }

    /// Renders the rule using `table`.
    pub fn display<'a>(&'a self, table: &'a SymbolTable) -> impl fmt::Display + 'a {
        DisplayRule { rule: self, table }
    }
}

struct DisplayRule<'a> {
    rule: &'a Rule,
    table: &'a SymbolTable,
}

impl fmt::Display for DisplayRule<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.rule.head.display(self.table))?;
        if !self.rule.body.is_empty() {
            write!(f, " :- ")?;
            for (i, b) in self.rule.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", b.display(self.table))?;
            }
        }
        write!(f, ".")
    }
}

/// An indexed collection of rules (the paper's static rule base).
///
/// # Examples
/// ```
/// use qpl_datalog::{Atom, Rule, RuleBase, SymbolTable, Term, Var};
/// let mut t = SymbolTable::new();
/// let (instr, prof) = (t.intern("instructor"), t.intern("prof"));
/// let x = Term::Var(Var(0));
/// let mut rb = RuleBase::new();
/// rb.add(Rule::new(Atom::new(instr, vec![x]), vec![Atom::new(prof, vec![x])]).unwrap());
/// assert_eq!(rb.rules_for(instr).count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RuleBase {
    rules: Vec<Rule>,
    by_head: HashMap<Symbol, Vec<RuleId>>,
}

impl RuleBase {
    /// Creates an empty rule base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule, returning its id.
    pub fn add(&mut self, rule: Rule) -> RuleId {
        let id = RuleId(u32::try_from(self.rules.len()).expect("rule base overflow"));
        self.by_head.entry(rule.head.predicate).or_default().push(id);
        self.rules.push(rule);
        id
    }

    /// The rule with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.index()]
    }

    /// Rules whose head predicate is `p`, in insertion order.
    pub fn rules_for(&self, p: Symbol) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.by_head.get(&p).into_iter().flatten().map(move |&id| (id, &self.rules[id.index()]))
    }

    /// Whether `p` is intensional (has at least one defining rule).
    /// Cheaper than `rules_for(p).count() > 0` — a single hash probe.
    pub fn has_rules_for(&self, p: Symbol) -> bool {
        self.by_head.get(&p).is_some_and(|ids| !ids.is_empty())
    }

    /// All rules.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.rules.iter().enumerate().map(|(i, r)| (RuleId(i as u32), r))
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Predicates that have at least one rule (intensional predicates).
    pub fn intensional_predicates(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.by_head.keys().copied()
    }

    /// Whether the rule-head dependency graph is recursive (some
    /// predicate can reach itself through rule bodies). The inference
    /// graph compiler rejects recursive rule bases (the paper's
    /// tractability results assume non-recursive graphs, Section 4).
    pub fn is_recursive(&self) -> bool {
        // DFS with colors over the predicate dependency graph.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut deps: HashMap<Symbol, Vec<Symbol>> = HashMap::new();
        for r in &self.rules {
            let entry = deps.entry(r.head.predicate).or_default();
            for b in &r.body {
                entry.push(b.predicate);
            }
        }
        let mut color: HashMap<Symbol, Color> = HashMap::new();
        fn visit(
            p: Symbol,
            deps: &HashMap<Symbol, Vec<Symbol>>,
            color: &mut HashMap<Symbol, Color>,
        ) -> bool {
            match color.get(&p).copied().unwrap_or(Color::White) {
                Color::Gray => return true,
                Color::Black => return false,
                Color::White => {}
            }
            color.insert(p, Color::Gray);
            if let Some(children) = deps.get(&p) {
                for &c in children {
                    if visit(c, deps, color) {
                        return true;
                    }
                }
            }
            color.insert(p, Color::Black);
            false
        }
        let preds: Vec<Symbol> = deps.keys().copied().collect();
        preds.into_iter().any(|p| visit(p, &deps, &mut color))
    }

    /// Every predicate reachable from `root` through rule bodies,
    /// including `root` itself and extensional leaves. This is the
    /// dependency footprint of a call on `root`: a database change to a
    /// predicate *outside* this set cannot affect any answer to `root`,
    /// which is what makes selective cache invalidation sound.
    pub fn reachable_predicates(&self, root: Symbol) -> HashSet<Symbol> {
        let mut seen: HashSet<Symbol> = HashSet::new();
        let mut frontier = vec![root];
        seen.insert(root);
        while let Some(p) = frontier.pop() {
            for (_, rule) in self.rules_for(p) {
                for b in &rule.body {
                    if seen.insert(b.predicate) {
                        frontier.push(b.predicate);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn t() -> SymbolTable {
        SymbolTable::new()
    }

    #[test]
    fn safe_rule_accepted() {
        let mut s = t();
        let (p, q) = (s.intern("p"), s.intern("q"));
        let x = Term::Var(Var(0));
        assert!(Rule::new(Atom::new(p, vec![x]), vec![Atom::new(q, vec![x])]).is_ok());
    }

    #[test]
    fn unsafe_rule_rejected() {
        let mut s = t();
        let (p, q) = (s.intern("p"), s.intern("q"));
        let err = Rule::new(
            Atom::new(p, vec![Term::Var(Var(0))]),
            vec![Atom::new(q, vec![Term::Var(Var(1))])],
        )
        .unwrap_err();
        assert!(matches!(err, DatalogError::UnsafeRule { .. }));
    }

    #[test]
    fn ground_head_rule_is_safe() {
        // grad(fred) :- admitted(fred, X).   (the paper's Section 4.1 rule)
        let mut s = t();
        let (grad, admitted, fred) = (s.intern("grad"), s.intern("admitted"), s.intern("fred"));
        let rule = Rule::new(
            Atom::new(grad, vec![Term::Const(fred)]),
            vec![Atom::new(admitted, vec![Term::Const(fred), Term::Var(Var(0))])],
        );
        assert!(rule.is_ok());
    }

    #[test]
    fn rules_for_indexes_by_head() {
        let mut s = t();
        let (instr, prof, grad) = (s.intern("instructor"), s.intern("prof"), s.intern("grad"));
        let x = Term::Var(Var(0));
        let mut rb = RuleBase::new();
        let r1 =
            rb.add(Rule::new(Atom::new(instr, vec![x]), vec![Atom::new(prof, vec![x])]).unwrap());
        let r2 =
            rb.add(Rule::new(Atom::new(instr, vec![x]), vec![Atom::new(grad, vec![x])]).unwrap());
        let ids: Vec<RuleId> = rb.rules_for(instr).map(|(id, _)| id).collect();
        assert_eq!(ids, vec![r1, r2]);
        assert_eq!(rb.rules_for(prof).count(), 0);
    }

    #[test]
    fn recursion_detected() {
        // a :- b.  b :- c.  c :- a.
        let mut s = t();
        let (a, b, c) = (s.intern("a"), s.intern("b"), s.intern("c"));
        let x = Term::Var(Var(0));
        let mut rb = RuleBase::new();
        rb.add(Rule::new(Atom::new(a, vec![x]), vec![Atom::new(b, vec![x])]).unwrap());
        rb.add(Rule::new(Atom::new(b, vec![x]), vec![Atom::new(c, vec![x])]).unwrap());
        rb.add(Rule::new(Atom::new(c, vec![x]), vec![Atom::new(a, vec![x])]).unwrap());
        assert!(rb.is_recursive());
    }

    #[test]
    fn dag_rule_base_not_recursive() {
        // The "A :- B. B :- C. A :- C." base of Note 5 is a DAG, not recursive.
        let mut s = t();
        let (a, b, c) = (s.intern("a"), s.intern("b"), s.intern("c"));
        let x = Term::Var(Var(0));
        let mut rb = RuleBase::new();
        rb.add(Rule::new(Atom::new(a, vec![x]), vec![Atom::new(b, vec![x])]).unwrap());
        rb.add(Rule::new(Atom::new(b, vec![x]), vec![Atom::new(c, vec![x])]).unwrap());
        rb.add(Rule::new(Atom::new(a, vec![x]), vec![Atom::new(c, vec![x])]).unwrap());
        assert!(!rb.is_recursive());
    }

    #[test]
    fn self_recursion_detected() {
        let mut s = t();
        let p = s.intern("p");
        let x = Term::Var(Var(0));
        let mut rb = RuleBase::new();
        rb.add(Rule::new(Atom::new(p, vec![x]), vec![Atom::new(p, vec![x])]).unwrap());
        assert!(rb.is_recursive());
    }

    #[test]
    fn display_renders_clauses() {
        let mut s = t();
        let (p, q) = (s.intern("p"), s.intern("q"));
        let x = Term::Var(Var(0));
        let r = Rule::new(Atom::new(p, vec![x]), vec![Atom::new(q, vec![x])]).unwrap();
        assert_eq!(r.display(&s).to_string(), "p(V0) :- q(V0).");
    }

    #[test]
    fn reachable_predicates_closes_over_rule_bodies() {
        // a :- b.  b :- c, d.  e :- a.  (d, c extensional; e unreachable
        // from a.)
        let mut s = t();
        let (a, b, c, d, e) =
            (s.intern("a"), s.intern("b"), s.intern("c"), s.intern("d"), s.intern("e"));
        let x = Term::Var(Var(0));
        let mut rb = RuleBase::new();
        rb.add(Rule::new(Atom::new(a, vec![x]), vec![Atom::new(b, vec![x])]).unwrap());
        rb.add(
            Rule::new(Atom::new(b, vec![x]), vec![Atom::new(c, vec![x]), Atom::new(d, vec![x])])
                .unwrap(),
        );
        rb.add(Rule::new(Atom::new(e, vec![x]), vec![Atom::new(a, vec![x])]).unwrap());
        let from_a = rb.reachable_predicates(a);
        assert_eq!(from_a, [a, b, c, d].into_iter().collect());
        let from_c = rb.reachable_predicates(c);
        assert_eq!(from_c, [c].into_iter().collect(), "extensional root reaches only itself");
        let from_e = rb.reachable_predicates(e);
        assert_eq!(from_e, [e, a, b, c, d].into_iter().collect());
    }

    #[test]
    fn var_span_counts_head_and_body() {
        let mut s = t();
        let (p, q) = (s.intern("p"), s.intern("q"));
        let r = Rule::new(
            Atom::new(p, vec![Term::Var(Var(1))]),
            vec![Atom::new(q, vec![Term::Var(Var(1)), Term::Var(Var(4))])],
        )
        .unwrap();
        assert_eq!(r.var_span(), 5);
    }
}
