//! Note 4 in practice: a knowledge base with *conjunctive* rule bodies
//! compiles to an and-or graph, real queries classify into hyper-arc
//! contexts, and the and-or hill-climber learns which alternative to try
//! first.
//!
//! ```text
//! cargo run --example conjunctive_eligibility
//! ```

use qpl::core::pib_andor::AndOrPib;
use qpl::graph::andor_compile::compile_andor;
use qpl::graph::hypergraph::{execute, AndOrStrategy};
use qpl::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KB: &str = "
    % Students are eligible if enrolled AND paid up, or on scholarship.
    eligible(X) :- enrolled(X, Course), paid(X, Term).
    eligible(X) :- scholarship(X).
    enrolled(ann, cs). paid(ann, fall).
    enrolled(bob, math).               % bob never paid
    scholarship(carol). scholarship(dan). scholarship(eve).
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = SymbolTable::new();
    let program = parser::parse_program(KB, &mut table)?;
    let form = parser::parse_query_form("eligible(b)", &mut table)?;
    let compiled = compile_andor(&program.rules, &form, &table, 32)?;
    let g = compiled.graph.clone();
    println!(
        "and-or graph: {} goals, {} hyper-arcs (conjunction + disjunct)",
        g.goal_count(),
        g.arc_count()
    );

    // Answer some queries with the default order (conjunction first).
    let s0 = AndOrStrategy::left_to_right(&g);
    for name in ["ann", "bob", "carol", "zack"] {
        let q = parser::parse_query(&format!("eligible({name})"), &mut table)?;
        let ctx = compiled.classify(&q, &program.facts)?;
        let run = execute(&g, &s0, &ctx);
        println!("eligible({name})? {:5}  probes = {}", run.proved, run.cost);
    }

    // The population is scholarship-heavy; learn to check the
    // scholarship disjunct first.
    let people =
        [("ann", 0.1), ("bob", 0.1), ("carol", 0.25), ("dan", 0.25), ("eve", 0.25), ("zack", 0.05)];
    let contexts: Vec<_> = people
        .iter()
        .map(|(p, w)| -> Result<_, Box<dyn std::error::Error>> {
            let q = parser::parse_query(&format!("eligible({p})"), &mut table)?;
            Ok((compiled.classify(&q, &program.facts)?, *w))
        })
        .collect::<Result<_, _>>()?;
    let expected = |s: &AndOrStrategy| -> f64 {
        contexts.iter().map(|(c, w)| w * execute(&g, s, c).cost).sum()
    };

    let mut pib = AndOrPib::new(&g, s0.clone(), 0.05);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..20_000 {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut pick = 0;
        for (i, (_, w)) in people.iter().enumerate() {
            acc += w;
            if u < acc {
                pick = i;
                break;
            }
        }
        pib.observe(&g, &contexts[pick].0);
    }
    println!(
        "\nlearned order after 20k queries: expected probes {:.3} → {:.3} ({} climb(s))",
        expected(&s0),
        expected(pib.strategy()),
        pib.climbs().len()
    );
    let first = pib.strategy().order(g.root())[0];
    println!("first alternative tried at the root: {}", g.arc(first).label);
    Ok(())
}
