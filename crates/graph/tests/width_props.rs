//! Property tests for the width-generic bit-parallel executor: at every
//! plane width W ∈ {1, 2, 4, 8}, a W×64-lane batch must behave exactly
//! like that many independent scalar program runs — bit-identical costs,
//! identical outcomes, identical per-arc event sequences, and identical
//! metrics-observed results. Width is a storage layout choice, never a
//! semantic one.
//!
//! The W=1 case doubles as the regression anchor for the pre-refactor
//! single-`u64` plane path: the same mask-derived corpus that
//! `batch_props` always ran now re-runs through the `[u64; 1]` blocks
//! and must keep producing the exact scalar bits it always did.

use proptest::prelude::*;
use qpl_graph::batch::{
    execute_batch, execute_batch_observed, tail_mask, width_for_lanes, BatchRun, ContextBatch,
    LaneMask, LANES, MAX_LANES,
};
use qpl_graph::context::{Context, RunScratch};
use qpl_graph::graph::GraphBuilder;
use qpl_graph::program::{execute_program_into, StrategyProgram};
use qpl_graph::{ArcId, ArcOutcome, InferenceGraph, NodeId, Strategy};
use qpl_obs::MemorySink;

/// Deterministically builds a random-ish tree from a shape seed (the
/// same generator `properties.rs` uses).
fn graph_for(seed: u64) -> InferenceGraph {
    fn lcg(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *state >> 33
    }
    fn grow(b: &mut GraphBuilder, node: NodeId, depth: usize, state: &mut u64, label: &mut u32) {
        let branch = depth < 4 && lcg(state) % 100 < 55;
        if !branch {
            let c = 1.0 + (lcg(state) % 4) as f64;
            b.retrieval(node, &format!("D{}", *label), c);
            *label += 1;
            return;
        }
        for _ in 0..1 + (lcg(state) % 3) as usize {
            let c = 1.0 + (lcg(state) % 4) as f64;
            let (_, child) = b.reduction(node, &format!("R{}", *label), c, "goal");
            *label += 1;
            grow(b, child, depth + 1, state, label);
        }
    }
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut b = GraphBuilder::new("root");
    let root = b.root();
    let mut label = 0;
    for _ in 0..1 + (lcg(&mut state) % 3) as usize {
        let c = 1.0 + (lcg(&mut state) % 4) as f64;
        let (_, child) = b.reduction(root, &format!("R{label}"), c, "goal");
        label += 1;
        grow(&mut b, child, 1, &mut state, &mut label);
    }
    b.finish().expect("generated trees are valid")
}

/// Deterministic per-lane context: arc `i` blocked iff bit `i % 64` of
/// `mask` is set (the `batch_props` corpus shape).
fn context_from_mask(g: &InferenceGraph, mask: u64) -> Context {
    let mut i = 0usize;
    Context::from_fn(g, |_| {
        let blocked = (mask >> (i % 64)) & 1 == 1;
        i += 1;
        blocked
    })
}

/// Lane `l`'s context for a plane: the seed mask rotated by lane, so
/// every lane differs and word boundaries carry distinct patterns.
fn lane_context(g: &InferenceGraph, seed_mask: u64, lane: usize) -> Context {
    context_from_mask(g, seed_mask.rotate_left((lane as u32).wrapping_mul(7)))
}

/// Checks one `lanes`-wide plane against `lanes` scalar runs of the
/// same program: cost bits, outcomes, and reconstructed event lists.
fn assert_plane_matches_scalar(
    g: &InferenceGraph,
    p: &StrategyProgram,
    seed_mask: u64,
    lanes: usize,
) {
    let mut batch = ContextBatch::new(g.arc_count(), lanes);
    for lane in 0..lanes {
        batch.set_lane(lane, &lane_context(g, seed_mask, lane));
    }
    assert_eq!(batch.width(), width_for_lanes(lanes));

    let mut run = BatchRun::new();
    let mut sink = MemorySink::new();
    let succeeded = execute_batch_observed(p, &batch, LaneMask::ALL, &mut run, &mut sink);
    assert_eq!(
        sink.value_stats("graph.batch.width").map(|s| s.max),
        Some(batch.width() as f64),
        "the observed variant reports the plane width"
    );

    let mut scratch = RunScratch::new(g);
    let mut events: Vec<(ArcId, ArcOutcome)> = Vec::new();
    for lane in 0..lanes {
        let ctx = lane_context(g, seed_mask, lane);
        let scalar_outcome = execute_program_into(p, &ctx, &mut scratch);
        assert_eq!(run.outcome(lane), scalar_outcome, "lane {lane} of {lanes}: outcome");
        assert_eq!(
            run.cost(lane).to_bits(),
            scratch.cost().to_bits(),
            "lane {lane} of {lanes}: cost bits"
        );
        assert_eq!(
            succeeded.test(lane),
            scalar_outcome.is_success(),
            "lane {lane} of {lanes}: success mask"
        );
        run.events_into(p, lane, &mut events);
        assert_eq!(events, scratch.events(), "lane {lane} of {lanes}: event sequence");
        for (a, outcome) in scratch.events() {
            assert_eq!(run.outcome_in(lane, *a), Some(*outcome), "lane {lane}: outcome_in");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) A W-lane batch equals W independent scalar runs for every
    /// plane width, including the observed entry point.
    #[test]
    fn every_width_matches_independent_scalar_runs(
        graph_seed in 0u64..32,
        seed_mask in proptest::num::u64::ANY,
        fill in 1usize..=LANES,
    ) {
        let g = graph_for(graph_seed);
        let strategy = Strategy::left_to_right(&g);
        let p = StrategyProgram::compile(&g, &strategy)
            .expect("left-to-right strategies are path-form");
        for width in [1usize, 2, 4, 8] {
            // A full plane and a partial one per width (the partial
            // plane exercises the tail of the last word).
            assert_plane_matches_scalar(&g, &p, seed_mask, width * LANES);
            assert_plane_matches_scalar(&g, &p, seed_mask, (width - 1) * LANES + fill);
        }
    }

    /// (b) The W=1 path reproduces the pre-refactor single-`u64` plane
    /// behavior bit-for-bit on the original `batch_props` corpus: a
    /// 64-lane plane driven by an arbitrary active mask.
    #[test]
    fn width_one_is_bit_identical_to_the_single_word_path(
        graph_seed in 0u64..32,
        seed_mask in proptest::num::u64::ANY,
        active_bits in proptest::num::u64::ANY,
    ) {
        let g = graph_for(graph_seed);
        let strategy = Strategy::left_to_right(&g);
        let p = StrategyProgram::compile(&g, &strategy)
            .expect("left-to-right strategies are path-form");
        let mut batch = ContextBatch::new(g.arc_count(), LANES);
        prop_assert_eq!(batch.width(), 1, "64 lanes always pick the one-word layout");
        for lane in 0..LANES {
            batch.set_lane(lane, &lane_context(&g, seed_mask, lane));
        }
        let mut run = BatchRun::new();
        let active = LaneMask::low(active_bits);
        let succeeded = execute_batch(&p, &batch, active, &mut run);
        let mut scratch = RunScratch::new(&g);
        for lane in 0..LANES {
            if active_bits & (1u64 << lane) == 0 {
                prop_assert_eq!(run.cost(lane).to_bits(), 0f64.to_bits(), "inactive lane is idle");
                prop_assert!(!succeeded.test(lane));
                continue;
            }
            let ctx = lane_context(&g, seed_mask, lane);
            let scalar_outcome = execute_program_into(&p, &ctx, &mut scratch);
            prop_assert_eq!(run.outcome(lane), scalar_outcome);
            prop_assert_eq!(run.cost(lane).to_bits(), scratch.cost().to_bits());
        }
    }

    /// The mask algebra the executor leans on: `tail_mask` counts what
    /// it covers, and the derived width always fits the lane count.
    #[test]
    fn tail_masks_cover_exactly_the_lanes_they_claim(lanes in 0usize..=MAX_LANES) {
        let width = width_for_lanes(lanes);
        prop_assert!(width * LANES >= lanes, "derived width holds every lane");
        let m = tail_mask(width, lanes);
        prop_assert_eq!(m.count_ones() as usize, lanes);
        for lane in 0..width * LANES {
            prop_assert_eq!(m.test(lane), lane < lanes);
        }
    }
}
