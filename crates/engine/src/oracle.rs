//! Context oracles: i.i.d. sources of query-processing contexts.
//!
//! "PIB₁ … uses an oracle that produces contexts drawn randomly from the
//! distribution. (This oracle could simply be the system's user, who is
//! posing queries to the query processor …)" — Section 3.1. Here the
//! oracle is synthetic and seeded, so the probabilistic guarantees can be
//! *measured* over thousands of independent replays.
//!
//! Any [`ContextDistribution`] (finite mixes, independent-arc models) is
//! an oracle via the blanket impl. [`QueryMixOracle`] is the realistic
//! one: a weighted mix of concrete query atoms executed against a fixed
//! Datalog database, classified into blocked-arc contexts per Note 2 —
//! exactly "a user posing queries relevant to his application".

use qpl_datalog::{Atom, Database};
use qpl_graph::batch::ContextBatch;
use qpl_graph::compile::CompiledGraph;
use qpl_graph::context::Context;
use qpl_graph::expected::{ContextDistribution, FiniteDistribution};
use qpl_graph::GraphError;
use rand::Rng;

use crate::cache::DependencyFootprint;
use crate::qp::classify_context;

/// A stream of i.i.d. contexts.
pub trait ContextOracle {
    /// Draws the next context.
    fn draw(&mut self, rng: &mut dyn rand::RngCore) -> Context;

    /// Draws the next context into a caller-owned buffer — the
    /// allocation-free form of [`draw`](Self::draw) for per-sample hot
    /// loops (mirrors `ContextDistribution::sample_into`).
    fn draw_into(&mut self, rng: &mut dyn rand::RngCore, out: &mut Context) {
        out.copy_from(&self.draw(rng));
    }

    /// Draws one context per RNG into the lanes of `out` — the batched
    /// form of [`draw`](Self::draw) feeding the bit-parallel executor.
    /// Lane `l` must consume exactly the randomness scalar draw `l`
    /// would from `rngs[l]` (the engine hands each lane its per-sample
    /// RNG, so batched and scalar learners see identical streams). The
    /// caller pre-sizes `out`; overriders should fill lanes without
    /// cloning contexts.
    ///
    /// # Panics
    /// Panics if `rngs.len() != out.lanes()`.
    fn draw_batch_into(&mut self, rngs: &mut [rand::rngs::StdRng], out: &mut ContextBatch) {
        assert_eq!(rngs.len(), out.lanes(), "one RNG per batch lane");
        for (lane, rng) in rngs.iter_mut().enumerate() {
            let ctx = self.draw(rng);
            out.set_lane(lane, &ctx);
        }
    }
}

impl<D: ContextDistribution> ContextOracle for D {
    fn draw(&mut self, rng: &mut dyn rand::RngCore) -> Context {
        self.sample(rng)
    }

    fn draw_into(&mut self, rng: &mut dyn rand::RngCore, out: &mut Context) {
        self.sample_into(rng, out);
    }

    fn draw_batch_into(&mut self, rngs: &mut [rand::rngs::StdRng], out: &mut ContextBatch) {
        // Distributions have allocation-free batched sampling built in.
        self.sample_batch_into(rngs, out);
    }
}

/// A weighted mix of concrete queries over a fixed database.
#[derive(Debug, Clone)]
pub struct QueryMixOracle<'g> {
    compiled: &'g CompiledGraph,
    db: Database,
    queries: Vec<(Atom, f64)>,
    /// Note-2 classification of each query, precomputed once — drawing
    /// then costs O(1) instead of one database probe per retrieval arc.
    contexts: Vec<Context>,
    /// The retrieval predicates the compiled graph can probe — the only
    /// part of the database whose change can move a Note-2
    /// classification.
    footprint: DependencyFootprint,
    /// The footprint generation the classifications were computed under;
    /// [`refresh`](Self::refresh) re-classifies only when this lags.
    db_generation: u64,
    cumulative: Vec<f64>,
}

impl<'g> QueryMixOracle<'g> {
    /// Builds the oracle; weights are normalized.
    ///
    /// # Errors
    /// [`GraphError::BadProbability`] for bad weights, or
    /// [`GraphError::InvalidStrategy`] if a query does not match the
    /// compiled form.
    pub fn new(
        compiled: &'g CompiledGraph,
        db: Database,
        queries: Vec<(Atom, f64)>,
    ) -> Result<Self, GraphError> {
        let total: f64 = queries.iter().map(|(_, w)| *w).sum();
        if total <= 0.0 || total.is_nan() || !total.is_finite() {
            return Err(GraphError::BadProbability(total));
        }
        for (q, w) in &queries {
            if *w < 0.0 || !w.is_finite() {
                return Err(GraphError::BadProbability(*w));
            }
            if !compiled.form.matches(q) {
                return Err(GraphError::InvalidStrategy(
                    "query in mix does not match the compiled form".into(),
                ));
            }
        }
        let queries: Vec<(Atom, f64)> = queries.into_iter().map(|(q, w)| (q, w / total)).collect();
        let contexts: Vec<Context> = queries
            .iter()
            .map(|(q, _)| classify_context(compiled, q, &db))
            .collect::<Result<_, _>>()?;
        let mut cumulative = Vec::with_capacity(queries.len());
        let mut acc = 0.0;
        for (_, w) in &queries {
            acc += w;
            cumulative.push(acc);
        }
        let footprint = DependencyFootprint::of_compiled(compiled);
        let db_generation = footprint.generation(&db);
        Ok(Self { compiled, db, queries, contexts, footprint, db_generation, cumulative })
    }

    /// The database queries run against.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the database, e.g. to insert facts between
    /// sampling phases. Call [`refresh`](Self::refresh) afterwards —
    /// the precomputed Note-2 contexts describe the *old* database state
    /// until then.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Re-classifies the query mix if the database has changed since the
    /// contexts were computed, returning whether any work was done. The
    /// check is footprint-scoped: only deltas touching predicates the
    /// compiled graph actually retrieves trigger re-classification, so
    /// churn on unrelated predicates is free. An unchanged footprint
    /// costs a handful of integer compares, a changed one costs exactly
    /// one re-classification regardless of how many deltas happened
    /// since the last call.
    ///
    /// # Errors
    /// [`GraphError::InvalidStrategy`] if classification fails (it
    /// cannot for a mix that validated at construction, but the
    /// signature keeps the invariant visible).
    pub fn refresh(&mut self) -> Result<bool, GraphError> {
        let generation = self.footprint.generation(&self.db);
        if generation == self.db_generation {
            return Ok(false);
        }
        self.contexts = self
            .queries
            .iter()
            .map(|(q, _)| classify_context(self.compiled, q, &self.db))
            .collect::<Result<_, _>>()?;
        self.db_generation = generation;
        Ok(true)
    }

    /// The compiled graph the mix was validated against.
    pub fn compiled(&self) -> &'g CompiledGraph {
        self.compiled
    }

    /// Draws the index of a mix entry — the borrowed-access primitive
    /// behind [`draw_query`](Self::draw_query) and the `ContextOracle`
    /// impl (mirrors `FiniteDistribution::sample_index`).
    pub fn draw_index(&self, rng: &mut dyn rand::RngCore) -> usize {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u).min(self.queries.len() - 1)
    }

    /// Draws a query (not yet classified).
    pub fn draw_query(&self, rng: &mut dyn rand::RngCore) -> &Atom {
        &self.queries[self.draw_index(rng)].0
    }

    /// Borrowed view of the precomputed context for mix entry `idx` —
    /// lets hot loops avoid the per-draw `Context` clone that the
    /// owned-`draw` API forces.
    pub fn context(&self, idx: usize) -> &Context {
        &self.contexts[idx]
    }

    /// The exact context distribution this oracle induces (Note 2), for
    /// ground-truth expected costs.
    pub fn to_distribution(&self) -> FiniteDistribution {
        let items: Vec<(Context, f64)> =
            self.contexts.iter().cloned().zip(self.queries.iter().map(|(_, w)| *w)).collect();
        FiniteDistribution::new(items).expect("weights validated at construction")
    }
}

impl ContextOracle for QueryMixOracle<'_> {
    fn draw(&mut self, rng: &mut dyn rand::RngCore) -> Context {
        let idx = self.draw_index(rng);
        // Intentional clone: `draw` promises an owned context. Hot loops
        // use `draw_into`/`draw_batch_into` or `context(draw_index(..))`.
        self.contexts[idx].clone()
    }

    fn draw_into(&mut self, rng: &mut dyn rand::RngCore, out: &mut Context) {
        let idx = self.draw_index(rng);
        out.copy_from(&self.contexts[idx]);
    }

    fn draw_batch_into(&mut self, rngs: &mut [rand::rngs::StdRng], out: &mut ContextBatch) {
        assert_eq!(rngs.len(), out.lanes(), "one RNG per batch lane");
        for (lane, rng) in rngs.iter_mut().enumerate() {
            // Lanes borrow the precomputed classification directly — no
            // per-draw clone, unlike the owned `draw` path.
            let idx = self.draw_index(rng);
            out.set_lane(lane, &self.contexts[idx]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_datalog::parser::{parse_program, parse_query, parse_query_form};
    use qpl_datalog::SymbolTable;
    use qpl_graph::compile::{compile, CompileOptions};
    use qpl_graph::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FIGURE1: &str = "instructor(X) :- prof(X).\n\
                           instructor(X) :- grad(X).\n\
                           prof(russ). grad(manolis).";

    fn mix<'g>(t: &mut SymbolTable, cg: &'g CompiledGraph, db: Database) -> QueryMixOracle<'g> {
        let qs = vec![
            (parse_query("instructor(russ)", t).unwrap(), 0.60),
            (parse_query("instructor(manolis)", t).unwrap(), 0.15),
            (parse_query("instructor(fred)", t).unwrap(), 0.25),
        ];
        QueryMixOracle::new(cg, db, qs).unwrap()
    }

    #[test]
    fn query_mix_reproduces_section2_costs() {
        let mut t = SymbolTable::new();
        let p = parse_program(FIGURE1, &mut t).unwrap();
        let qf = parse_query_form("instructor(b)", &mut t).unwrap();
        let cg = compile(&p.rules, &qf, &t, &CompileOptions::default()).unwrap();
        let oracle = mix(&mut t, &cg, p.facts.clone());
        let dist = oracle.to_distribution();
        let prof_first = Strategy::left_to_right(&cg.graph);
        let mut orders: Vec<Vec<qpl_graph::ArcId>> =
            cg.graph.node_ids().map(|n| cg.graph.children(n).to_vec()).collect();
        orders[cg.graph.root().index()].reverse();
        let grad_first = Strategy::dfs_from_orders(&cg.graph, &orders).unwrap();
        assert!((dist.expected_cost(&cg.graph, &prof_first) - 2.8).abs() < 1e-12);
        assert!((dist.expected_cost(&cg.graph, &grad_first) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_weights() {
        let mut t = SymbolTable::new();
        let p = parse_program(FIGURE1, &mut t).unwrap();
        let qf = parse_query_form("instructor(b)", &mut t).unwrap();
        let cg = compile(&p.rules, &qf, &t, &CompileOptions::default()).unwrap();
        let oracle = mix(&mut t, &cg, p.facts.clone());
        let prof_retrieval =
            cg.graph.arc_ids().find(|&a| cg.graph.arc(a).label.contains("prof")).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let open = (0..n)
            .filter(|_| !oracle.context(oracle.draw_index(&mut rng)).is_blocked(prof_retrieval))
            .count();
        let freq = open as f64 / n as f64;
        assert!((freq - 0.6).abs() < 0.02, "prof retrieval open with frequency {freq}");
    }

    #[test]
    fn blanket_impl_for_distributions() {
        let mut t = SymbolTable::new();
        let p = parse_program(FIGURE1, &mut t).unwrap();
        let qf = parse_query_form("instructor(b)", &mut t).unwrap();
        let cg = compile(&p.rules, &qf, &t, &CompileOptions::default()).unwrap();
        let mut model =
            qpl_graph::IndependentModel::from_retrieval_probs(&cg.graph, &[0.5, 0.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let ctx = ContextOracle::draw(&mut model, &mut rng);
        assert_eq!(ctx.arc_count(), cg.graph.arc_count());
    }

    #[test]
    fn invalid_mix_rejected() {
        let mut t = SymbolTable::new();
        let p = parse_program(FIGURE1, &mut t).unwrap();
        let qf = parse_query_form("instructor(b)", &mut t).unwrap();
        let cg = compile(&p.rules, &qf, &t, &CompileOptions::default()).unwrap();
        // Wrong predicate.
        let bad = vec![(parse_query("prof(russ)", &mut t).unwrap(), 1.0)];
        assert!(QueryMixOracle::new(&cg, p.facts.clone(), bad).is_err());
        // Zero total weight.
        let bad = vec![(parse_query("instructor(russ)", &mut t).unwrap(), 0.0)];
        assert!(QueryMixOracle::new(&cg, p.facts.clone(), bad).is_err());
    }

    #[test]
    fn refresh_tracks_database_generation() {
        use qpl_datalog::Fact;
        let mut t = SymbolTable::new();
        let p = parse_program(FIGURE1, &mut t).unwrap();
        let qf = parse_query_form("instructor(b)", &mut t).unwrap();
        let cg = compile(&p.rules, &qf, &t, &CompileOptions::default()).unwrap();
        let mut oracle = mix(&mut t, &cg, p.facts.clone());
        assert!(!oracle.refresh().unwrap(), "fresh oracle has nothing to reclassify");
        // fred is neither prof nor grad: the mix's third entry blocks
        // every retrieval. Making fred a prof must unblock it — but only
        // after refresh notices the generation bump.
        let prof_arc =
            cg.graph.arc_ids().find(|&a| cg.graph.arc(a).label.contains("prof")).unwrap();
        assert!(oracle.context(2).is_blocked(prof_arc));
        let (prof, fred) = (t.lookup("prof").unwrap(), t.lookup("fred").unwrap());
        oracle.database_mut().insert(Fact::new(prof, vec![fred])).unwrap();
        assert!(oracle.context(2).is_blocked(prof_arc), "stale until refresh");
        assert!(oracle.refresh().unwrap(), "generation advanced: reclassified");
        assert!(!oracle.context(2).is_blocked(prof_arc));
        assert!(!oracle.refresh().unwrap(), "second refresh is a no-op");
    }

    #[test]
    fn batched_draws_match_scalar_draws_lane_for_lane() {
        use qpl_graph::batch::{ContextBatch, LANES};
        let mut t = SymbolTable::new();
        let p = parse_program(FIGURE1, &mut t).unwrap();
        let qf = parse_query_form("instructor(b)", &mut t).unwrap();
        let cg = compile(&p.rules, &qf, &t, &CompileOptions::default()).unwrap();
        let mut oracle = mix(&mut t, &cg, p.facts.clone());
        let mut rngs: Vec<StdRng> =
            (0..LANES as u64).map(|l| StdRng::seed_from_u64(40 + l)).collect();
        let mut batch = ContextBatch::new(cg.graph.arc_count(), LANES);
        oracle.draw_batch_into(&mut rngs, &mut batch);
        let mut lane_ctx = Context::all_open(&cg.graph);
        for lane in 0..LANES {
            let mut rng = StdRng::seed_from_u64(40 + lane as u64);
            let scalar = oracle.draw(&mut rng);
            batch.extract_lane(lane, &mut lane_ctx);
            assert_eq!(lane_ctx, scalar, "lane {lane}");
        }
        // The blanket (distribution) impl delegates to batched sampling.
        let mut model =
            qpl_graph::IndependentModel::from_retrieval_probs(&cg.graph, &[0.5, 0.5]).unwrap();
        let mut rngs: Vec<StdRng> =
            (0..LANES as u64).map(|l| StdRng::seed_from_u64(80 + l)).collect();
        oracle_draw_batch(&mut model, &mut rngs, &mut batch);
        for lane in 0..LANES {
            let mut rng = StdRng::seed_from_u64(80 + lane as u64);
            let scalar = ContextOracle::draw(&mut model, &mut rng);
            batch.extract_lane(lane, &mut lane_ctx);
            assert_eq!(lane_ctx, scalar, "lane {lane}");
        }
    }

    fn oracle_draw_batch<O: ContextOracle>(
        o: &mut O,
        rngs: &mut [StdRng],
        out: &mut qpl_graph::batch::ContextBatch,
    ) {
        o.draw_batch_into(rngs, out);
    }

    #[test]
    fn draw_query_returns_mix_members() {
        let mut t = SymbolTable::new();
        let p = parse_program(FIGURE1, &mut t).unwrap();
        let qf = parse_query_form("instructor(b)", &mut t).unwrap();
        let cg = compile(&p.rules, &qf, &t, &CompileOptions::default()).unwrap();
        let oracle = mix(&mut t, &cg, p.facts.clone());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let q = oracle.draw_query(&mut rng);
            assert!(cg.form.matches(q));
        }
    }
}
