//! Benchmarks the `qpl-store` durability subsystem end to end and
//! emits `BENCH_store.json`.
//!
//! ```text
//! bench_store [--out BENCH_store.json] [--appends N] [--train N]
//!             [--min-speedup X]
//! ```
//!
//! Three sections:
//!
//! * **WAL append throughput** — `--appends` KB-delta records journaled
//!   and group-committed (64-record batches) under each fsync policy
//!   (`record` / `batch` / `off`), reported as records/s and MB/s. The
//!   spread is the price list an operator chooses from.
//! * **Checkpoint at E18 scale** — the layered-DAG reachability KB from
//!   experiment E18 (14 layers, the `BENCH_tabling` "big" shape) plus
//!   churned facts is snapshotted through the atomic
//!   rename-into-place path; reports snapshot bytes, write time, and
//!   recover (open + replay) time.
//! * **Cold start vs warm restart** — over the Figure-1 "minors"
//!   workload (queried kids are never professors, so the learner must
//!   climb from prof-first to grad-first). Cold = build the KB and
//!   *relearn* the adopted strategy by serving `--train` training
//!   queries through the PIB; warm = `Store::open`, rebuild the KB
//!   from the snapshot, `Pib::restore` the learner's Chernoff state,
//!   and answer the same probe. Both must produce the identical answer
//!   and strategy fingerprint, and the warm path must be at least
//!   `--min-speedup`× (default 10×) faster — asserted, not just
//!   reported: durability's whole point is not paying the relearning
//!   bill twice.

use qpl_core::{CandidateState, ClimbState, Pib, PibConfig, PibState};
use qpl_datalog::parser::parse_query;
use qpl_datalog::{Database, Fact, SymbolTable, Term};
use qpl_engine::{QueryMixOracle, QueryProcessor};
use qpl_graph::graph::ArcId;
use qpl_graph::Strategy;
use qpl_store::{
    CandidateEntry, ClimbEntry, FsyncPolicy, PibSnapshot, Record, Snapshot, Store, StoreConfig,
    StrategyState,
};
use qpl_workload::generator::{recursive_path_kb, RecursiveKbParams};
use qpl_workload::paper::university;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

const SEED: u64 = 20260808;
/// Records per group commit in the WAL throughput section — the same
/// order as one serve control batch.
const COMMIT_EVERY: usize = 64;

struct Args {
    out: String,
    appends: usize,
    train: usize,
    min_speedup: f64,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let get =
        |flag: &str| argv.iter().position(|a| a == flag).and_then(|p| argv.get(p + 1)).cloned();
    Args {
        out: get("--out").unwrap_or_else(|| "BENCH_store.json".to_string()),
        appends: get("--appends").map_or(2000, |v| v.parse().expect("--appends takes a count")),
        train: get("--train").map_or(20_000, |v| v.parse().expect("--train takes a count")),
        min_speedup: get("--min-speedup")
            .map_or(10.0, |v| v.parse().expect("--min-speedup takes a ratio")),
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qpl-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A realistic KB-delta record: one inserted edge fact.
fn delta_record(i: usize) -> Record {
    Record::Delta {
        insert: vec![format!("edge(n{}_{}, n{}_{})", i % 13, i, i % 13 + 1, i)],
        retract: vec![],
    }
}

struct WalRun {
    policy: &'static str,
    records: usize,
    bytes: u64,
    secs: f64,
}

/// Appends + group-commits `n` records under `policy` in a fresh dir.
fn bench_wal(policy: FsyncPolicy, name: &'static str, n: usize) -> WalRun {
    let dir = bench_dir(name);
    let (mut store, _) = Store::open(&dir, StoreConfig { fsync: policy, ..StoreConfig::default() })
        .expect("store opens");
    let t0 = Instant::now();
    let mut bytes = 0u64;
    for i in 0..n {
        let rec = delta_record(i);
        bytes += rec.encode().len() as u64 + 16;
        store.append(&rec).expect("append");
        if (i + 1) % COMMIT_EVERY == 0 {
            store.commit().expect("commit");
        }
    }
    store.commit().expect("final commit");
    let secs = t0.elapsed().as_secs_f64();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    WalRun { policy: name, records: n, bytes, secs }
}

struct CheckpointRun {
    facts: usize,
    snapshot_bytes: u64,
    write_ms: f64,
    recover_ms: f64,
    replayed_records: u64,
}

/// Snapshots the E18-scale KB (14-layer reachability DAG, all edges
/// kept) plus `churn` journaled deltas, then times a full reopen.
fn bench_checkpoint(churn: usize) -> CheckpointRun {
    let (table, _rules, db, _probe) =
        recursive_path_kb(&RecursiveKbParams { layers: 14, width: 2 }, |_, _, _| true);
    let facts = db.dump(&table);
    let mut pred_gens: Vec<(String, u64)> =
        db.predicate_generations().map(|(p, g)| (table.name(p).to_string(), g)).collect();
    pred_gens.sort();
    let snapshot =
        Snapshot { generation: db.generation(), facts, pred_gens, strategy: None, pib: None };

    let dir = bench_dir("checkpoint");
    let (mut store, _) = Store::open(&dir, StoreConfig::default()).expect("store opens");
    for i in 0..churn {
        store.append(&delta_record(i)).expect("append");
    }
    store.commit().expect("commit");

    let t0 = Instant::now();
    let info = store.checkpoint(&snapshot).expect("checkpoint");
    let write_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Post-checkpoint churn so the reopen replays real WAL work too.
    for i in 0..churn {
        store.append(&delta_record(churn + i)).expect("append");
    }
    store.commit().expect("commit");
    drop(store);

    let t0 = Instant::now();
    let (_, recovered) = Store::open(&dir, StoreConfig::default()).expect("reopen");
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    let replayed_records = recovered.records_replayed();
    let snap = recovered.snapshot.expect("snapshot came back");
    assert_eq!(snap.facts.len(), snapshot.facts.len(), "every fact survives the round trip");
    assert_eq!(recovered.records.len(), churn, "post-checkpoint churn replays");

    let _ = std::fs::remove_dir_all(&dir);
    CheckpointRun {
        facts: snapshot.facts.len(),
        snapshot_bytes: info.snapshot_bytes,
        write_ms,
        recover_ms,
        replayed_records,
    }
}

fn pib_state_to_snapshot(s: &PibState) -> PibSnapshot {
    PibSnapshot {
        delta: s.delta,
        test_every: s.test_every,
        strategy_arcs: s.strategy_arcs.clone(),
        samples_here: s.samples_here,
        contexts_seen: s.contexts_seen,
        tests_used: s.tests_used,
        history: s
            .history
            .iter()
            .map(|c| ClimbEntry {
                r1: c.r1,
                r2: c.r2,
                samples: c.samples,
                evidence: c.evidence,
                test_index: c.test_index,
            })
            .collect(),
        candidates: s
            .candidates
            .iter()
            .map(|c| CandidateEntry { r1: c.r1, r2: c.r2, sum: c.sum, count: c.count })
            .collect(),
    }
}

fn pib_state_from_snapshot(p: &PibSnapshot) -> PibState {
    PibState {
        delta: p.delta,
        test_every: p.test_every,
        strategy_arcs: p.strategy_arcs.clone(),
        samples_here: p.samples_here,
        contexts_seen: p.contexts_seen,
        tests_used: p.tests_used,
        history: p
            .history
            .iter()
            .map(|c| ClimbState {
                r1: c.r1,
                r2: c.r2,
                samples: c.samples,
                evidence: c.evidence,
                test_index: c.test_index,
            })
            .collect(),
        candidates: p
            .candidates
            .iter()
            .map(|c| CandidateState { r1: c.r1, r2: c.r2, sum: c.sum, count: c.count })
            .collect(),
    }
}

fn parse_ground_fact(text: &str, table: &mut SymbolTable) -> Fact {
    let atom = parse_query(text, table).expect("dumped fact parses");
    let args = atom
        .args
        .iter()
        .map(|t| match t {
            Term::Const(s) => *s,
            Term::Var(_) => panic!("dumped fact must be ground: {text}"),
        })
        .collect();
    Fact::new(atom.predicate, args)
}

struct RestartRun {
    cold_ms: f64,
    warm_ms: f64,
    speedup: f64,
    train: usize,
    climbs: usize,
    fingerprint: u64,
}

/// Builds the DB₂-scale minors knowledge base over the Figure-1
/// fixture: 2000 profs, 500 grads, plus ten queried kids of whom four
/// are grads — the adversarial mix where fact-count statistics point
/// the wrong way and the learner must actually climb to grad-first.
fn minors_kb(u: &mut qpl_workload::paper::University) -> Database {
    let mut db = u.db1.clone();
    let grad = u.table.lookup("grad").expect("grad interned");
    for i in 0..4 {
        let kid = u.table.intern(&format!("kid{i}"));
        db.insert(Fact::new(grad, vec![kid])).expect("consistent arity");
    }
    db
}

/// Cold: build + relearn + answer. Warm: recover + answer. Same
/// answer, same fingerprint, `min_speedup`× faster — or abort.
fn bench_restart(train: usize, min_speedup: f64) -> RestartRun {
    let probe_text = "instructor(kid3)";

    // ---- Cold start: the full relearning bill. ----
    let t_cold = Instant::now();
    let mut u = university();
    let db0 = minors_kb(&mut u);
    let g = &u.compiled.graph;
    let mix: Vec<_> = (0..10)
        .map(|i| {
            let atom =
                parse_query(&format!("instructor(kid{i})"), &mut u.table).expect("query parses");
            (atom, 0.1)
        })
        .collect();
    let oracle = QueryMixOracle::new(&u.compiled, db0.clone(), mix.clone()).expect("mix is valid");
    let dist = oracle.to_distribution();
    let mut pib = Pib::new(g, Strategy::left_to_right(g), PibConfig::new(0.05));
    let mut qp = QueryProcessor::left_to_right(&u.compiled);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut adopted_fp = qp.strategy().fingerprint();
    for _ in 0..train {
        let idx = dist.sample_index(&mut rng);
        // A cold-starting server learns from the queries it serves:
        // every observation is also an execution under the strategy
        // adopted so far.
        qp.run(&mix[idx].0, &db0).expect("training query runs");
        pib.observe(g, dist.context(idx));
        if pib.strategy().fingerprint() != adopted_fp {
            adopted_fp = pib.strategy().fingerprint();
            qp.set_strategy(pib.strategy().clone());
        }
    }
    let probe = parse_query(probe_text, &mut u.table).expect("probe parses");
    let cold_answer = qp.run(&probe, &db0).expect("probe runs");
    let cold_ms = t_cold.elapsed().as_secs_f64() * 1e3;
    let fingerprint = pib.strategy().fingerprint();
    let climbs = pib.history().len();
    assert!(climbs >= 1, "the minors mix must force at least one climb, or cold isn't relearning");

    // Persist what a serving process would have journaled.
    let dir = bench_dir("restart");
    {
        let (mut store, _) = Store::open(&dir, StoreConfig::default()).expect("store opens");
        let mut pred_gens: Vec<(String, u64)> =
            db0.predicate_generations().map(|(p, g)| (u.table.name(p).to_string(), g)).collect();
        pred_gens.sort();
        let snapshot = Snapshot {
            facts: db0.dump(&u.table),
            generation: db0.generation(),
            pred_gens,
            strategy: Some(StrategyState {
                fingerprint,
                arcs: pib.strategy().arcs().iter().map(|a| a.0).collect(),
            }),
            pib: Some(pib_state_to_snapshot(&pib.export_state())),
        };
        store.checkpoint(&snapshot).expect("checkpoint");
    }

    // ---- Warm restart: recover instead of relearn. ----
    let t_warm = Instant::now();
    let mut u2 = university();
    let (_, recovered) = Store::open(&dir, StoreConfig::default()).expect("reopen");
    let snap = recovered.snapshot.expect("snapshot present");
    let mut db = Database::new();
    for text in &snap.facts {
        db.insert(parse_ground_fact(text, &mut u2.table)).expect("fact re-inserts");
    }
    let interned: Vec<_> =
        snap.pred_gens.iter().map(|(p, gen)| (u2.table.intern(p), *gen)).collect();
    db.restore_generations(snap.generation, interned);
    let g2 = &u2.compiled.graph;
    let state = snap.strategy.expect("strategy present");
    let strategy =
        Strategy::from_arcs(g2, state.arcs.iter().map(|&a| ArcId(a)).collect()).expect("rebuilds");
    let pib2 = Pib::restore(g2, &pib_state_from_snapshot(&snap.pib.expect("pib present")))
        .expect("pib restores");
    let mut qp2 = QueryProcessor::left_to_right(&u2.compiled);
    qp2.set_strategy(pib2.strategy().clone());
    let probe2 = parse_query(probe_text, &mut u2.table).expect("probe parses");
    let warm_answer = qp2.run(&probe2, &db).expect("probe runs");
    let warm_ms = t_warm.elapsed().as_secs_f64() * 1e3;

    assert_eq!(strategy.fingerprint(), state.fingerprint, "rebuilt strategy matches journal");
    assert_eq!(
        pib2.strategy().fingerprint(),
        fingerprint,
        "restored learner sits at the relearned strategy"
    );
    let same = matches!(
        (&cold_answer.answer, &warm_answer.answer),
        (qpl_engine::QueryAnswer::Yes(_), qpl_engine::QueryAnswer::Yes(_))
            | (qpl_engine::QueryAnswer::No, qpl_engine::QueryAnswer::No)
    );
    assert!(same, "warm restart must answer exactly what the cold start answered");

    let speedup = cold_ms / warm_ms.max(1e-6);
    assert!(
        speedup >= min_speedup,
        "warm restart ({warm_ms:.2} ms) must be at least {min_speedup}x faster than \
         relearning ({cold_ms:.2} ms); measured {speedup:.1}x"
    );

    let _ = std::fs::remove_dir_all(&dir);
    RestartRun { cold_ms, warm_ms, speedup, train, climbs, fingerprint }
}

fn main() {
    let args = parse_args();

    // Section 1: WAL append throughput under the three fsync policies.
    // `record` pays a sync per append — cap its record count so the
    // bench stays snappy on slow disks.
    let wal_runs = vec![
        bench_wal(FsyncPolicy::EveryRecord, "record", args.appends.min(512)),
        bench_wal(FsyncPolicy::EveryBatch, "batch", args.appends),
        bench_wal(FsyncPolicy::Off, "off", args.appends),
    ];
    for r in &wal_runs {
        println!(
            "wal fsync={}: {} records in {:.3}s = {:.0} rec/s, {:.2} MB/s",
            r.policy,
            r.records,
            r.secs,
            r.records as f64 / r.secs,
            r.bytes as f64 / r.secs / 1e6
        );
    }

    // Section 2: checkpoint + recovery at E18 scale.
    let ck = bench_checkpoint(256);
    println!(
        "checkpoint: {} facts -> {} bytes in {:.2} ms; reopen (load + {}-record replay) {:.2} ms",
        ck.facts, ck.snapshot_bytes, ck.write_ms, ck.replayed_records, ck.recover_ms
    );

    // Section 3: cold start vs warm restart.
    let rs = bench_restart(args.train, args.min_speedup);
    println!(
        "restart: cold (relearn, {} observations, {} climbs) {:.2} ms vs warm (recover) \
         {:.2} ms = {:.1}x  [fp {:016x}]",
        rs.train, rs.climbs, rs.cold_ms, rs.warm_ms, rs.speedup, rs.fingerprint
    );

    let wal_json = wal_runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"fsync\": \"{}\", \"records\": {}, \"bytes\": {}, \"secs\": {:.4}, \
                 \"records_per_sec\": {:.0}, \"mb_per_sec\": {:.2}}}",
                r.policy,
                r.records,
                r.bytes,
                r.secs,
                r.records as f64 / r.secs,
                r.bytes as f64 / r.secs / 1e6
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"qpl-store durability (WAL + snapshot + warm restart)\",\n  \
         \"commit_every\": {COMMIT_EVERY},\n  \
         \"wal_append\": [\n{wal_json}\n  ],\n  \
         \"checkpoint\": {{\"shape\": \"E18 reachability DAG (14 layers x 2)\", \
         \"facts\": {}, \"snapshot_bytes\": {}, \"write_ms\": {:.3}, \
         \"recover_ms\": {:.3}, \"replayed_records\": {}}},\n  \
         \"restart\": {{\"train_observations\": {}, \"climbs\": {}, \
         \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"speedup\": {:.1}, \
         \"min_speedup_asserted\": {}, \"strategy_fp\": \"{:016x}\"}},\n  \
         \"note\": \"cold = build engine + relearn the adopted strategy from PIB \
         observations + answer probe; warm = Store::open + rebuild KB from snapshot + \
         Pib::restore + answer probe. Identical answer and fingerprint asserted; the \
         speedup floor is asserted in-bin, so a regression fails the bench instead of \
         shipping a slow restart\"\n}}\n",
        ck.facts,
        ck.snapshot_bytes,
        ck.write_ms,
        ck.recover_ms,
        ck.replayed_records,
        rs.train,
        rs.climbs,
        rs.cold_ms,
        rs.warm_ms,
        rs.speedup,
        args.min_speedup,
        rs.fingerprint,
    );
    std::fs::write(&args.out, &json).expect("write BENCH_store.json");
    println!("wrote {}", args.out);
}
