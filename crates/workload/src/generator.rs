//! Random workload generators: tree-shaped inference graphs, probability
//! assignments, context distributions, and layered Datalog knowledge
//! bases.
//!
//! Every generator takes an explicit seeded RNG so experiments are
//! reproducible bit-for-bit.

use qpl_datalog::parser::parse_program;
use qpl_datalog::{Database, RuleBase, SymbolTable};
use qpl_graph::expected::{FiniteDistribution, IndependentModel};
use qpl_graph::graph::{GraphBuilder, InferenceGraph, NodeId};
use qpl_graph::Context;
use rand::Rng;

/// Shape parameters for random tree-shaped inference graphs.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum depth of reductions below the root.
    pub max_depth: usize,
    /// Maximum children per internal node (min 1 at the root).
    pub max_branch: usize,
    /// Probability an internal node keeps branching rather than
    /// terminating in a retrieval.
    pub branch_prob: f64,
    /// Arc costs drawn uniformly from this range.
    pub cost_range: (f64, f64),
}

impl Default for TreeParams {
    fn default() -> Self {
        Self { max_depth: 4, max_branch: 3, branch_prob: 0.6, cost_range: (1.0, 5.0) }
    }
}

/// Generates a random tree-shaped inference graph. Every leaf is a
/// retrieval, so the graph always validates.
pub fn random_tree(rng: &mut impl Rng, params: &TreeParams) -> InferenceGraph {
    fn grow(
        b: &mut GraphBuilder,
        node: NodeId,
        depth: usize,
        rng: &mut impl Rng,
        params: &TreeParams,
        counter: &mut u32,
    ) {
        let branch = depth < params.max_depth && rng.gen::<f64>() < params.branch_prob;
        if !branch {
            let cost = rng.gen_range(params.cost_range.0..=params.cost_range.1);
            b.retrieval(node, &format!("D{}", *counter), cost);
            *counter += 1;
            return;
        }
        let kids = rng.gen_range(1..=params.max_branch);
        for _ in 0..kids {
            let cost = rng.gen_range(params.cost_range.0..=params.cost_range.1);
            let (_, child) = b.reduction(node, &format!("R{}", *counter), cost, "goal");
            *counter += 1;
            grow(b, child, depth + 1, rng, params, counter);
        }
    }
    let mut b = GraphBuilder::new("q(κ)");
    let root = b.root();
    let mut counter = 0;
    let kids = rng.gen_range(1..=params.max_branch.max(1));
    for _ in 0..kids {
        let cost = rng.gen_range(params.cost_range.0..=params.cost_range.1);
        let (_, child) = b.reduction(root, &format!("R{counter}"), cost, "goal");
        counter += 1;
        grow(&mut b, child, 1, rng, params, &mut counter);
    }
    b.finish().expect("generated trees are structurally valid")
}

/// Generates a random tree whose retrieval count lies in `[lo, hi]`
/// (rejection sampling over [`random_tree`]).
pub fn random_tree_with_retrievals(
    rng: &mut impl Rng,
    params: &TreeParams,
    lo: usize,
    hi: usize,
) -> InferenceGraph {
    loop {
        let g = random_tree(rng, params);
        let n = g.retrievals().count();
        if (lo..=hi).contains(&n) {
            return g;
        }
    }
}

/// A random independent model: retrievals get probabilities uniform in
/// `p_range`; reductions stay deterministic.
pub fn random_retrieval_model(
    rng: &mut impl Rng,
    g: &InferenceGraph,
    p_range: (f64, f64),
) -> IndependentModel {
    let probs: Vec<f64> = g.retrievals().map(|_| rng.gen_range(p_range.0..=p_range.1)).collect();
    IndependentModel::from_retrieval_probs(g, &probs).expect("generated probabilities valid")
}

/// A random independent model in which reductions may block too
/// (Theorem-3 territory): each reduction is made probabilistic with
/// probability `reduction_rate`.
pub fn random_experiment_model(
    rng: &mut impl Rng,
    g: &InferenceGraph,
    p_range: (f64, f64),
    reduction_rate: f64,
) -> IndependentModel {
    IndependentModel::from_fn(g, |a| match g.arc(a).kind {
        qpl_graph::ArcKind::Retrieval => rng.gen_range(p_range.0..=p_range.1),
        qpl_graph::ArcKind::Reduction => {
            if rng.gen::<f64>() < reduction_rate {
                rng.gen_range(p_range.0.max(0.05)..=1.0)
            } else {
                1.0
            }
        }
    })
    .expect("generated probabilities valid")
}

/// A random finite context distribution with `classes` equivalence
/// classes, each blocking every arc independently with probability
/// `block_rate`. Unlike independent models, the resulting per-arc
/// statuses are *correlated* across arcs — the setting where PIB shines
/// and Υ's independence assumption breaks (footnote 8).
pub fn random_finite_distribution(
    rng: &mut impl Rng,
    g: &InferenceGraph,
    classes: usize,
    block_rate: f64,
) -> FiniteDistribution {
    assert!(classes >= 1, "need at least one context class");
    let items: Vec<(Context, f64)> = (0..classes)
        .map(|_| {
            let ctx = Context::from_fn(g, |_| rng.gen::<f64>() < block_rate);
            (ctx, rng.gen_range(0.1..1.0))
        })
        .collect();
    FiniteDistribution::new(items).expect("weights positive")
}

/// Parameters for layered random Datalog knowledge bases.
#[derive(Debug, Clone, Copy)]
pub struct KbParams {
    /// Number of rule layers between the root predicate and the EDB.
    pub layers: usize,
    /// Alternative rules per derived predicate (branching factor).
    pub rules_per_layer: usize,
    /// Constants in the domain.
    pub constants: usize,
    /// Facts per extensional predicate.
    pub facts_per_predicate: usize,
}

impl Default for KbParams {
    fn default() -> Self {
        Self { layers: 3, rules_per_layer: 2, constants: 20, facts_per_predicate: 6 }
    }
}

/// Generates a layered, non-recursive Datalog program: the root
/// predicate `q0` is defined by alternative rule chains bottoming out in
/// extensional predicates with random unary facts. Returns the symbol
/// table, rules, database, and the root predicate name.
pub fn random_layered_kb(
    rng: &mut impl Rng,
    params: &KbParams,
) -> (SymbolTable, RuleBase, Database, String) {
    let mut src = String::new();
    // Layer l predicate i is `p{l}_{i}`; layer 0 is just `q0`.
    let widths: Vec<usize> =
        std::iter::once(1).chain((1..=params.layers).map(|_| params.rules_per_layer)).collect();
    for l in 0..params.layers {
        for i in 0..widths[l] {
            let head = if l == 0 { "q0".to_string() } else { format!("p{l}_{i}") };
            for j in 0..params.rules_per_layer {
                let child = if l + 1 == params.layers {
                    format!(
                        "e{}_{}",
                        l + 1,
                        (i * params.rules_per_layer + j) % widths[l + 1].max(1)
                    )
                } else {
                    format!("p{}_{}", l + 1, j)
                };
                src.push_str(&format!("{head}(X) :- {child}(X).\n"));
            }
        }
    }
    // Facts for the extensional predicates.
    for i in 0..params.rules_per_layer {
        let pred = format!("e{}_{}", params.layers, i);
        for _ in 0..params.facts_per_predicate {
            let c = rng.gen_range(0..params.constants);
            src.push_str(&format!("{pred}(c{c}).\n"));
        }
    }
    let mut table = SymbolTable::new();
    let program = parse_program(&src, &mut table).expect("generated program parses");
    (table, program.rules, program.facts, "q0".to_string())
}

/// Shape of the layered-DAG reachability workload for the tabling
/// experiments (E18, `tabling_speedup`).
#[derive(Debug, Clone, Copy)]
pub struct RecursiveKbParams {
    /// Node layers in the DAG. Plain SLD explores every root-to-frontier
    /// path, so its work grows like `width^layers`; tabling stays
    /// `O(layers · width²)`.
    pub layers: usize,
    /// Nodes per layer.
    pub width: usize,
}

impl Default for RecursiveKbParams {
    fn default() -> Self {
        Self { layers: 10, width: 2 }
    }
}

/// Builds the right-recursive reachability program
///
/// ```text
/// path(X, Y) :- edge(X, Y).
/// path(X, Z) :- edge(X, Y), path(Y, Z).
/// ```
///
/// over a layered DAG: node `i` of layer `l` is the constant `n{l}_{i}`,
/// and the edge to node `j` of layer `l + 1` exists iff
/// `keep_edge(l, i, j)` — pass `|_, _, _| true` for the full DAG, or a
/// seeded predicate to carve per-sample edge masks out of one shape.
///
/// Returns `(symbols, rules, database, query)` where the query is
/// `path(n0_0, sink)` for a `sink` constant **no edge reaches**: every
/// solver must exhaust the whole derivation space to answer `no`, which
/// is the worst case Section 2 prices — plain SLD re-proves each shared
/// suffix once per path while a tabled solver proves it once.
pub fn recursive_path_kb(
    params: &RecursiveKbParams,
    mut keep_edge: impl FnMut(usize, usize, usize) -> bool,
) -> (SymbolTable, RuleBase, Database, qpl_datalog::Atom) {
    let mut src =
        String::from("path(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).\n");
    let mut any = false;
    for l in 0..params.layers.saturating_sub(1) {
        for i in 0..params.width {
            for j in 0..params.width {
                if keep_edge(l, i, j) {
                    src.push_str(&format!("edge(n{l}_{i}, n{}_{j}).\n", l + 1));
                    any = true;
                }
            }
        }
    }
    if !any {
        // Keep the program well-formed even for a degenerate mask.
        src.push_str("edge(n0_0, n1_0).\n");
    }
    let mut table = SymbolTable::new();
    let program = parse_program(&src, &mut table).expect("generated program parses");
    let query =
        qpl_datalog::parser::parse_query("path(n0_0, sink)", &mut table).expect("query parses");
    (table, program.rules, program.facts, query)
}

/// The bound-source reachability query `path(n0_0, W)` (form
/// `path(b,f)`) over a [`recursive_path_kb`] symbol table — the
/// binding-aware sweeps' workload knob: unrewritten semi-naive must
/// saturate the all-pairs closure to answer it, while magic-rewritten
/// evaluation only derives paths out of `n0_0`.
pub fn source_reachability_query(table: &mut SymbolTable) -> qpl_datalog::Atom {
    qpl_datalog::parser::parse_query("path(n0_0, W)", table).expect("query parses")
}

/// Emits a generated (or paper) knowledge base's shape into a
/// [`MetricsSink`](qpl_obs::MetricsSink) as `workload.kb.*` counters —
/// fact count, rule count, symbol count, recursiveness — so experiment
/// snapshots record which workload produced them.
pub fn emit_kb_provenance(
    table: &SymbolTable,
    rules: &RuleBase,
    db: &Database,
    sink: &mut dyn qpl_obs::MetricsSink,
) {
    sink.counter("workload.kb.facts", db.len() as u64);
    sink.counter("workload.kb.rules", rules.len() as u64);
    sink.counter("workload.kb.symbols", table.len() as u64);
    sink.counter("workload.kb.recursive", u64::from(rules.is_recursive()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_graph::expected::ContextDistribution;
    use qpl_graph::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_trees_are_valid_and_varied() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sizes = Vec::new();
        for _ in 0..50 {
            let g = random_tree(&mut rng, &TreeParams::default());
            assert!(g.is_tree());
            assert!(g.validate(true).is_ok());
            sizes.push(g.arc_count());
        }
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max > min, "generator should vary sizes: {sizes:?}");
    }

    #[test]
    fn retrieval_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let g = random_tree_with_retrievals(&mut rng, &TreeParams::default(), 3, 6);
            let n = g.retrievals().count();
            assert!((3..=6).contains(&n));
        }
    }

    #[test]
    fn models_are_executable() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_tree_with_retrievals(&mut rng, &TreeParams::default(), 2, 8);
        let m = random_retrieval_model(&mut rng, &g, (0.1, 0.9));
        let s = Strategy::left_to_right(&g);
        let c = m.expected_cost(&g, &s);
        assert!(c.is_finite() && c > 0.0);
        let m2 = random_experiment_model(&mut rng, &g, (0.1, 0.9), 0.5);
        let ctx = m2.sample(&mut rng);
        assert_eq!(ctx.arc_count(), g.arc_count());
    }

    #[test]
    fn recursive_path_kb_shapes_reachability() {
        let params = RecursiveKbParams { layers: 5, width: 2 };
        let (mut table, rules, db, sink_query) = recursive_path_kb(&params, |_, _, _| true);
        let solver = qpl_datalog::TopDown::new(&rules, &db);
        // The sink is unreachable by construction: both engines must say no.
        assert!(!solver.provable_tabled(&sink_query).unwrap());
        assert!(!solver.provable(&sink_query).unwrap());
        // The far corner of the full DAG is reachable.
        let far = qpl_datalog::parser::parse_query("path(n0_0, n4_1)", &mut table).unwrap();
        assert!(solver.provable_tabled(&far).unwrap());
        assert!(solver.provable(&far).unwrap());
        // An empty mask still yields a parseable, answerable program.
        let (_, rules, db, q) = recursive_path_kb(&params, |_, _, _| false);
        let solver = qpl_datalog::TopDown::new(&rules, &db);
        assert!(!solver.provable_tabled(&q).unwrap());
    }

    #[test]
    fn source_query_answers_match_under_magic() {
        let params = RecursiveKbParams { layers: 6, width: 2 };
        let (mut table, rules, db, _) = recursive_path_kb(&params, |_, _, _| true);
        let q = source_reachability_query(&mut table);
        let magic = qpl_datalog::magic_answers(&rules, &db, &q, &mut table);
        let plain = qpl_datalog::eval::answers(&rules, &db, &q);
        assert_eq!(magic, plain);
        // Everything downstream of n0_0 is reachable in the full DAG.
        assert_eq!(magic.len(), (params.layers - 1) * params.width);
    }

    #[test]
    fn finite_distributions_are_normalized() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = random_tree(&mut rng, &TreeParams::default());
        let d = random_finite_distribution(&mut rng, &g, 5, 0.4);
        let total: f64 = d.items().iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn layered_kb_compiles_and_answers() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut table, rules, db, root) = random_layered_kb(&mut rng, &KbParams::default());
        assert!(!rules.is_recursive());
        let form =
            qpl_datalog::parser::parse_query_form(&format!("{root}(b)"), &mut table).unwrap();
        let cg = qpl_graph::compile::compile(
            &rules,
            &form,
            &table,
            &qpl_graph::compile::CompileOptions::default(),
        )
        .unwrap();
        assert!(cg.graph.retrievals().count() >= 1);
        // Answers agree with the bottom-up oracle for a few constants.
        let qp = qpl_engine::qp::QueryProcessor::left_to_right(&cg);
        for c in 0..10 {
            let q = qpl_datalog::parser::parse_query(&format!("{root}(c{c})"), &mut table).unwrap();
            let got = qp.run(&q, &db).unwrap().answer.is_yes();
            let want = qpl_datalog::eval::holds(&rules, &db, &q);
            assert_eq!(got, want, "disagreement on c{c}");
        }
    }

    #[test]
    fn kb_provenance_counters_match_kb() {
        let mut rng = StdRng::seed_from_u64(5);
        let (table, rules, db, _) = random_layered_kb(&mut rng, &KbParams::default());
        let mut sink = qpl_obs::MemorySink::new();
        emit_kb_provenance(&table, &rules, &db, &mut sink);
        assert_eq!(sink.counter_total("workload.kb.facts"), db.len() as u64);
        assert_eq!(sink.counter_total("workload.kb.rules"), rules.len() as u64);
        assert_eq!(sink.counter_total("workload.kb.recursive"), 0);
    }

    #[test]
    fn determinism_per_seed() {
        let g1 = random_tree(&mut StdRng::seed_from_u64(9), &TreeParams::default());
        let g2 = random_tree(&mut StdRng::seed_from_u64(9), &TreeParams::default());
        assert_eq!(g1.arc_count(), g2.arc_count());
        let a: Vec<String> = g1.arc_ids().map(|a| g1.arc(a).label.clone()).collect();
        let b: Vec<String> = g2.arc_ids().map(|a| g2.arc(a).label.clone()).collect();
        assert_eq!(a, b);
    }
}
