//! # qpl-workload — the paper's examples and random workload generators
//!
//! * [`paper`] — executable versions of every worked example in Greiner
//!   (PODS'92): the Figure-1 university knowledge base with its query
//!   mixes and the `DB₂` statistics, the Figure-2 graph `G_B`, the
//!   Section-4.1 reachability case, and the Section-5.2 pauper scenario.
//! * [`generator`] — seeded random generators for tree-shaped inference
//!   graphs, probability models (independent and correlated), and
//!   layered Datalog knowledge bases, used by the property tests and the
//!   experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod paper;

pub use generator::{
    emit_kb_provenance, random_finite_distribution, random_layered_kb, random_retrieval_model,
    random_tree, random_tree_with_retrievals, recursive_path_kb, KbParams, RecursiveKbParams,
    TreeParams,
};
pub use paper::{figure2, pauper, reachability, university, University};
