//! The TCP server: acceptor + per-connection handlers + N executor
//! shards.
//!
//! ## Threading model
//!
//! * **Acceptor** — polls a non-blocking listener, enforces the
//!   connection cap at the door, spawns one handler thread per
//!   connection. On shutdown it stays at the door — answering new
//!   connections with `shutting_down` — until every shard has flushed
//!   its queue, so no admitted job ever races a closed socket.
//! * **Handlers** — read request lines (with a short read timeout so
//!   they notice shutdown), answer `ping` inline, and steer query/batch
//!   work to an executor shard, blocking on a per-request channel for
//!   the response line. Handlers never touch the engine.
//! * **Executor shards** — [`ServerConfig::shards`] threads, each
//!   owning a *shared-nothing replica* of the full engine state: its
//!   own symbol table, compiled graph, fact database,
//!   [`QueryProcessor`] with compiled program, [`BatchScratch`], PIB
//!   learner, metrics sink, and service-time ring. A shard sleeps on
//!   its own condvar until its [`Batcher`] is ready or a control
//!   request arrives, cuts a 64-lane plane, classifies each query into
//!   its Note-2 context, executes the plane bit-parallel, responds to
//!   every job, and feeds the served contexts to `Pib::observe_batch`.
//!   Nothing engine-shaped is shared between shards, so the hot path
//!   takes no lock any other shard can hold and engine internals need
//!   no `Sync`.
//!
//! ## Steering
//!
//! Whole jobs (never individual lanes) steer to a *home* shard by an
//! FNV-1a hash of the first query text, so a repeated query stream
//! lands on a warm replica. If the home shard's bounded queue declines
//! the job, the handler makes one fallback offer to the least-loaded
//! other shard (by queued-lane depth); only when that also declines is
//! the request refused with `overloaded`. Fallbacks are counted
//! (`steer_fallbacks`) so steering skew is visible in `stats`.
//!
//! ## Shard-local climbs, periodic merge
//!
//! With adaptation on, every shard hill-climbs its own PIB learner on
//! the traffic it serves. A shard that accepts a climb publishes its
//! (immutable, fingerprinted) strategy to the [`StrategyBoard`] — one
//! slot plus an epoch counter. Each shard polls the epoch (one relaxed
//! atomic load per loop iteration) and, when it changes, adopts the
//! published strategy unless the fingerprint already matches its own:
//! `Pib::adopt` restarts the candidate neighbourhood and
//! `QueryProcessor::set_strategy` swaps the compiled program. Merging
//! is last-publisher-wins and eventually consistent — shards may
//! briefly serve different strategies, which is safe because answers
//! are strategy-invariant (only costs differ).
//!
//! ## Overload and shutdown semantics
//!
//! Admission is bounded per shard ([`ServerConfig::queue_cap`] lanes):
//! a request that fits neither its home shard nor the fallback is
//! *refused with an `overloaded` error response*, never silently
//! dropped — every admitted request gets exactly one response.
//! `shutdown` (or [`Server::shutdown`]) flips every shard into
//! draining mode: new work is refused with `shutting_down`, each shard
//! flushes its queue plane by plane and exits, and only after the last
//! shard reports drained does the acceptor close; then [`Server::join`]
//! returns.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use qpl_core::{CandidateState, ClimbState, Pib, PibConfig, PibState};
use qpl_datalog::parser::{parse_program, parse_query, parse_query_form};
use qpl_datalog::{Atom, Database, Fact, Symbol, SymbolTable, Term};
use qpl_engine::cache::{DependencyFootprint, RunCache};
use qpl_engine::qp::{classify_context_into, BatchScratch, QueryAnswer, QueryProcessor};
use qpl_graph::batch::{width_for_lanes, LANES, MAX_LANES};
use qpl_graph::compile::{compile, CompileOptions, CompiledGraph};
use qpl_graph::graph::ArcId;
use qpl_graph::{InferenceGraph, Strategy};
use qpl_obs::names::{cache as cache_names, serve as names, store as store_names};
use qpl_obs::{JsonSnapshot, MemorySink, MetricsSink};
use qpl_store::{
    CandidateEntry, CheckpointInfo, ClimbEntry, FsyncPolicy, PibSnapshot, Record, Snapshot, Store,
    StoreError, StrategyState,
};
use qpl_workload::generator::{random_layered_kb, KbParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::batcher::{plane_width_for_depth, Batcher, LaneWeight};
use crate::wire::{self, LaneResult, Request, ShardStatsView, StatsView};

/// Server tuning knobs. `Default` suits tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back via
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Executor shards, each with its own engine replica and queue.
    /// Sized to physical cores for multi-core scaling; clamped to ≥ 1.
    pub shards: usize,
    /// Admission bound in queued query lanes, *per shard*; at least one
    /// full plane.
    pub queue_cap: usize,
    /// Flush deadline: the longest a queued request waits for its plane
    /// to fill before executing anyway.
    pub max_wait: Duration,
    /// Connection cap, enforced at accept time.
    pub max_connections: usize,
    /// Largest `"qs"` array accepted per batch request (clamped to the
    /// 64-lane plane width).
    pub max_batch: usize,
    /// Longest accepted request line.
    pub max_line_bytes: usize,
    /// `Some(δ)` turns on online PIB adaptation at confidence `1 − δ`
    /// on every shard; `None` serves with the fixed left-to-right
    /// strategy.
    pub adapt_delta: Option<f64>,
    /// Handler read timeout — the latency with which idle connections
    /// notice a shutdown.
    pub read_poll: Duration,
    /// `Some(dir)` turns on durability: recovery from `dir` at startup
    /// (snapshot load + WAL replay), journaling of every applied KB
    /// delta and adopted strategy on shard 0, and the `checkpoint` wire
    /// op. `None` serves purely in memory.
    pub data_dir: Option<PathBuf>,
    /// WAL fsync policy when durability is on. Under `EveryBatch` (the
    /// default) acks are still only sent after the covering group
    /// commit, so an acked update is never lost.
    pub fsync: FsyncPolicy,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: 1,
            queue_cap: 1024,
            max_wait: Duration::from_micros(500),
            max_connections: 256,
            max_batch: LANES,
            max_line_bytes: 64 * 1024,
            adapt_delta: None,
            read_poll: Duration::from_millis(25),
            data_dir: None,
            fsync: FsyncPolicy::EveryBatch,
            segment_bytes: 8 << 20,
        }
    }
}

/// Everything one executor shard needs to serve queries: symbol table,
/// compiled graph, and fact database. `Clone` is the replica
/// constructor — [`Server::start`] moves one clone into each shard, so
/// shards share nothing.
#[derive(Debug, Clone)]
pub struct ServeEngine {
    /// Symbol table the knowledge base (and incoming queries) intern
    /// into.
    pub table: SymbolTable,
    /// The compiled inference graph for the query form.
    pub compiled: CompiledGraph,
    /// The fact database.
    pub db: Database,
}

impl ServeEngine {
    /// Parses a Datalog knowledge base and compiles it for `form`.
    ///
    /// # Errors
    /// A rendered parse or compile error.
    pub fn from_source(kb: &str, form: &str) -> Result<Self, String> {
        let mut table = SymbolTable::new();
        let program = parse_program(kb, &mut table).map_err(|e| e.to_string())?;
        let qf = parse_query_form(form, &mut table).map_err(|e| e.to_string())?;
        let compiled = compile(&program.rules, &qf, &table, &CompileOptions::default())
            .map_err(|e| e.to_string())?;
        Ok(Self { table, compiled, db: program.facts })
    }

    /// The paper's Figure-1 university knowledge base, form
    /// `instructor(b)`.
    pub fn figure1() -> Self {
        Self::from_source(
            "instructor(X) :- prof(X).\n\
             instructor(X) :- grad(X).\n\
             prof(russ). grad(manolis).",
            "instructor(b)",
        )
        .expect("Figure 1 compiles")
    }

    /// A seeded random layered knowledge base (the E18-style workload
    /// shape), form `q0(b)`.
    pub fn layered(seed: u64, params: &KbParams) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut table, rules, db, _root) = random_layered_kb(&mut rng, params);
        let qf = parse_query_form("q0(b)", &mut table).expect("form parses");
        let compiled =
            compile(&rules, &qf, &table, &CompileOptions::default()).expect("layered KB compiles");
        Self { table, compiled, db }
    }
}

/// One admitted query/batch request.
struct Job {
    texts: Vec<String>,
    id: Option<u64>,
    batch: bool,
    resp: mpsc::Sender<String>,
}

impl LaneWeight for Job {
    fn lanes(&self) -> usize {
        self.texts.len()
    }
}

/// One shard's slice of a `stats` snapshot, sent back over the control
/// channel; the handler merges all shards into one response line.
struct ShardStats {
    queue_lanes: u64,
    served: u64,
    batches: u64,
    /// Summed lane capacity of executed planes (fill denominator).
    plane_lanes: u64,
    /// Planes executed at width 1/2/4/8, indexed by log2(width).
    width_planes: [u64; 4],
    declined: u64,
    errors: u64,
    climbs: u64,
    adoptions: u64,
    /// KB deltas this shard has applied (convergence check).
    deltas_applied: u64,
    /// Lanes actually *executed* in planes (cache-hit lanes are served
    /// without occupying a lane) — the width-aware fill numerator.
    executed_lanes: u64,
    /// Recent per-request service times, µs (unsorted ring contents).
    service_us: Vec<f64>,
    /// This shard's adopted strategy fingerprint.
    strategy_fp: u64,
    /// Durability health, present only on the store-owning shard (0).
    store: Option<wire::StoreStatsView>,
    sink: MemorySink,
}

/// One shard's acknowledgement of an applied KB delta.
struct UpdateAck {
    /// Facts that actually changed the database on insert.
    inserted: u64,
    /// Facts that actually changed the database on retract.
    retracted: u64,
    /// This shard's applied-delta counter after the update.
    deltas_applied: u64,
}

/// Why a control operation was refused.
enum ControlError {
    /// The request itself is malformed (unparsable fact, arity
    /// mismatch) — a `bad_request` on the wire.
    Invalid(String),
    /// The durable store is absent or degraded — `store_unavailable`
    /// on the wire. The server sheds the update but keeps serving
    /// reads.
    Store(String),
}

/// Work that bypasses admission (cheap, must stay responsive under
/// load).
enum Control {
    Stats {
        resp: mpsc::Sender<ShardStats>,
    },
    /// A KB delta. Shard 0 validates, journals (when durable), and
    /// applies it first; replicas 1..n see it only after shard 0
    /// acked, so a store failure can never diverge the fleet. Each
    /// shard validates the whole delta (parse + groundedness) before
    /// applying any of it, so identical replicas reach identical
    /// verdicts and stay convergent.
    Update {
        insert: Arc<Vec<String>>,
        retract: Arc<Vec<String>>,
        resp: mpsc::Sender<Result<UpdateAck, ControlError>>,
    },
    /// Snapshot + WAL truncation, served by the store-owning shard (0).
    Checkpoint {
        resp: mpsc::Sender<Result<CheckpointInfo, ControlError>>,
    },
}

struct QueueState {
    batcher: Batcher<Job>,
    control: VecDeque<Control>,
    draining: bool,
}

/// One shard's queue: its own lock and condvar (so shards never contend
/// with each other) plus a lock-free depth mirror for least-loaded
/// fallback steering.
struct ShardQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    /// Mirror of `batcher.lanes_queued()`, refreshed by whoever holds
    /// the state lock; read without it when picking a fallback shard.
    depth: AtomicUsize,
}

/// The climb-merge mailbox: one published `(fingerprint, strategy)`
/// slot guarded by a mutex, with an epoch counter shards poll cheaply.
/// Last publisher wins; strategies are immutable and fingerprinted, so
/// adoption is a clone + compiled-program swap, never a data race.
struct StrategyBoard {
    epoch: AtomicU64,
    slot: Mutex<Option<(u64, Strategy)>>,
}

struct Shared {
    shards: Vec<ShardQueue>,
    board: StrategyBoard,
    stop: AtomicBool,
    conns: AtomicUsize,
    /// Requests refused with `overloaded` (home and fallback both
    /// declined) — the wire-level `shed` total.
    refused: AtomicU64,
    /// Jobs admitted at a non-home shard.
    steer_fallbacks: AtomicU64,
    /// Shards that have flushed their queue and exited; the acceptor
    /// closes only when this reaches `shards.len()`.
    drained: AtomicUsize,
}

/// A running server; dropping it initiates shutdown.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<thread::JoinHandle<()>>,
    executors: Vec<thread::JoinHandle<()>>,
}

/// Per-shard startup state recovered from the durable store. Every
/// shard gets the restored learner and strategy (replicas start
/// convergent); only shard 0 owns the store handle and journals.
#[derive(Default)]
struct ShardInit {
    pib: Option<Pib>,
    strategy: Option<Strategy>,
    store: Option<Store>,
    records_replayed: u64,
    torn_tail: bool,
}

fn invalid_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Rebuilds a [`Strategy`] from journaled arc indices, checking both
/// the arc bounds and that the rebuilt fingerprint matches the
/// journaled one — a mismatch means the data dir was written against a
/// different knowledge base than the one now being served.
fn strategy_from_state(g: &InferenceGraph, state: &StrategyState) -> io::Result<Strategy> {
    let arcs = state
        .arcs
        .iter()
        .map(|&raw| {
            if (raw as usize) < g.arc_count() {
                Ok(ArcId(raw))
            } else {
                Err(invalid_data(format!(
                    "recovered strategy arc {raw} out of range for a graph with {} arcs \
                     (data dir from a different knowledge base?)",
                    g.arc_count()
                )))
            }
        })
        .collect::<io::Result<Vec<_>>>()?;
    let strategy = Strategy::from_arcs(g, arcs).map_err(|e| invalid_data(e.to_string()))?;
    if strategy.fingerprint() != state.fingerprint {
        return Err(invalid_data(format!(
            "recovered strategy fingerprint {:016x} does not match the journaled {:016x} \
             (data dir from a different knowledge base?)",
            strategy.fingerprint(),
            state.fingerprint
        )));
    }
    Ok(strategy)
}

/// Maps the store's engine-free PIB mirror back to `qpl-core`'s state.
fn pib_state_from_snapshot(p: &PibSnapshot) -> PibState {
    PibState {
        delta: p.delta,
        test_every: p.test_every,
        strategy_arcs: p.strategy_arcs.clone(),
        samples_here: p.samples_here,
        contexts_seen: p.contexts_seen,
        tests_used: p.tests_used,
        history: p
            .history
            .iter()
            .map(|c| ClimbState {
                r1: c.r1,
                r2: c.r2,
                samples: c.samples,
                evidence: c.evidence,
                test_index: c.test_index,
            })
            .collect(),
        candidates: p
            .candidates
            .iter()
            .map(|c| CandidateState { r1: c.r1, r2: c.r2, sum: c.sum, count: c.count })
            .collect(),
    }
}

/// Maps `qpl-core`'s exported PIB state to the store's mirror struct.
fn pib_state_to_snapshot(s: &PibState) -> PibSnapshot {
    PibSnapshot {
        delta: s.delta,
        test_every: s.test_every,
        strategy_arcs: s.strategy_arcs.clone(),
        samples_here: s.samples_here,
        contexts_seen: s.contexts_seen,
        tests_used: s.tests_used,
        history: s
            .history
            .iter()
            .map(|c| ClimbEntry {
                r1: c.r1,
                r2: c.r2,
                samples: c.samples,
                evidence: c.evidence,
                test_index: c.test_index,
            })
            .collect(),
        candidates: s
            .candidates
            .iter()
            .map(|c| CandidateEntry { r1: c.r1, r2: c.r2, sum: c.sum, count: c.count })
            .collect(),
    }
}

/// Opens the store in `dir` and replays its contents into `engine`:
/// snapshot facts rebuild the database (generation stamps realigned to
/// the checkpointed values), WAL deltas re-apply in order, and the
/// newest journaled strategy — snapshot or a later WAL record — wins.
/// Returns the live store handle plus the restored learner and strategy
/// for the shards, leaving `engine` in the exact state the never-killed
/// process was in at its last durable point.
fn recover(engine: &mut ServeEngine, dir: &Path, cfg: &ServerConfig) -> io::Result<ShardInit> {
    let store_cfg =
        qpl_store::StoreConfig { fsync: cfg.fsync, segment_bytes: cfg.segment_bytes.max(1) };
    let (store, recovered) =
        Store::open(dir, store_cfg).map_err(|e| invalid_data(e.to_string()))?;
    let mut latest_strategy: Option<StrategyState> = None;
    let mut pib_snap: Option<PibSnapshot> = None;
    if let Some(snap) = &recovered.snapshot {
        // The snapshot's fact dump replaces the seed KB wholesale: it
        // *is* the seed plus every delta the checkpoint covered.
        let mut db = Database::new();
        for text in &snap.facts {
            let fact = parse_ground_fact(text, &mut engine.table)
                .map_err(|e| invalid_data(format!("snapshot fact {text:?}: {e}")))?;
            db.insert(fact).map_err(|e| invalid_data(format!("snapshot fact {text:?}: {e}")))?;
        }
        let gens: Vec<(Symbol, u64)> =
            snap.pred_gens.iter().map(|(p, g)| (engine.table.intern(p), *g)).collect();
        db.restore_generations(snap.generation, gens);
        engine.db = db;
        latest_strategy.clone_from(&snap.strategy);
        pib_snap.clone_from(&snap.pib);
    }
    for record in &recovered.records {
        match record {
            Record::Delta { insert, retract } => {
                for text in insert {
                    let fact = parse_ground_fact(text, &mut engine.table)
                        .map_err(|e| invalid_data(format!("journaled insert {text:?}: {e}")))?;
                    engine
                        .db
                        .insert(fact)
                        .map_err(|e| invalid_data(format!("journaled insert {text:?}: {e}")))?;
                }
                for text in retract {
                    let fact = parse_ground_fact(text, &mut engine.table)
                        .map_err(|e| invalid_data(format!("journaled retract {text:?}: {e}")))?;
                    engine
                        .db
                        .retract(fact)
                        .map_err(|e| invalid_data(format!("journaled retract {text:?}: {e}")))?;
                }
            }
            Record::Strategy { fingerprint, arcs } => {
                latest_strategy =
                    Some(StrategyState { fingerprint: *fingerprint, arcs: arcs.clone() });
            }
        }
    }
    let g = &engine.compiled.graph;
    let strategy = latest_strategy.as_ref().map(|s| strategy_from_state(g, s)).transpose()?;
    let pib = match (cfg.adapt_delta, &pib_snap) {
        (Some(_), Some(p)) => {
            let state = pib_state_from_snapshot(p);
            let mut pib = Pib::restore(g, &state).map_err(|e| invalid_data(e.to_string()))?;
            // A strategy journaled after the checkpoint supersedes the
            // snapshot's learner position; adopting restarts the
            // candidate neighbourhood exactly as the live climb did.
            if let Some(s) = &strategy {
                pib.adopt(g, s.clone());
            }
            Some(pib)
        }
        _ => None,
    };
    Ok(ShardInit {
        pib,
        strategy,
        store: Some(store),
        records_replayed: recovered.records_replayed(),
        torn_tail: recovered.torn_tail,
    })
}

impl Server {
    /// Binds, spawns the acceptor and one executor thread per shard
    /// (each owning its own [`ServeEngine`] replica), returns
    /// immediately. With [`ServerConfig::data_dir`] set, recovery runs
    /// first — snapshot load plus ordered WAL replay — so every shard
    /// replica starts from the durable state, and shard 0 takes
    /// ownership of the store for journaling and checkpoints.
    ///
    /// # Errors
    /// Bind or thread-spawn failures, or a data directory that cannot
    /// be recovered (I/O failure, corruption past the repairable tail,
    /// or state journaled against a different knowledge base).
    pub fn start(engine: ServeEngine, cfg: ServerConfig) -> io::Result<Server> {
        let mut engine = engine;
        let mut durable = match &cfg.data_dir {
            Some(dir) => Some(recover(&mut engine, &dir.clone(), &cfg)?),
            None => None,
        };
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let n = cfg.shards.max(1);
        let shared = Arc::new(Shared {
            shards: (0..n)
                .map(|_| ShardQueue {
                    state: Mutex::new(QueueState {
                        batcher: Batcher::new(cfg.queue_cap.max(LANES)),
                        control: VecDeque::new(),
                        draining: false,
                    }),
                    cv: Condvar::new(),
                    depth: AtomicUsize::new(0),
                })
                .collect(),
            board: StrategyBoard { epoch: AtomicU64::new(0), slot: Mutex::new(None) },
            stop: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            refused: AtomicU64::new(0),
            steer_fallbacks: AtomicU64::new(0),
            drained: AtomicUsize::new(0),
        });
        // Shard 0 takes the caller's engine; the rest get replicas.
        let mut engines = Vec::with_capacity(n);
        for _ in 1..n {
            engines.push(engine.clone());
        }
        engines.push(engine);
        let mut executors = Vec::with_capacity(n);
        for (shard, engine) in engines.into_iter().rev().enumerate() {
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            // Every shard starts from the recovered learner/strategy;
            // the store handle itself goes to shard 0 alone.
            let init = match &mut durable {
                Some(d) => ShardInit {
                    pib: d.pib.clone(),
                    strategy: d.strategy.clone(),
                    store: if shard == 0 { d.store.take() } else { None },
                    records_replayed: d.records_replayed,
                    torn_tail: d.torn_tail,
                },
                None => ShardInit::default(),
            };
            executors.push(
                thread::Builder::new()
                    .name(format!("qpl-serve-exec-{shard}"))
                    .spawn(move || executor_loop(shard, engine, init, cfg, &shared))?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("qpl-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &cfg, &shared))?
        };
        Ok(Server { addr, shared, acceptor: Some(acceptor), executors })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful drain, as if a `shutdown` request arrived.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Waits for every executor shard to flush its queue and for the
    /// acceptor to close behind them, then for handler threads to close
    /// their connections (bounded wait).
    pub fn join(mut self) {
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let t0 = Instant::now();
        while self.shared.conns.load(Ordering::SeqCst) > 0 && t0.elapsed() < Duration::from_secs(2)
        {
            thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        initiate_shutdown(&self.shared);
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Locks a mutex, tolerating poison: a shard that panicked mid-update
/// must not take the handler threads (or its peers) down with it — the
/// state behind the lock is counters and queues, all safe to read after
/// a writer died.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn initiate_shutdown(shared: &Shared) {
    shared.stop.store(true, Ordering::SeqCst);
    for sq in &shared.shards {
        {
            let mut st = lock_unpoisoned(&sq.state);
            st.draining = true;
        }
        sq.cv.notify_all();
    }
}

/// Home-shard steering: FNV-1a over the job's first query text. Pure so
/// property tests can replay steering decisions.
pub fn steer_shard(text: &str, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Fallback steering: the least-loaded shard other than `home` (ties to
/// the lowest index), or `None` when there is no other shard. Pure so
/// property tests can replay fallback decisions.
pub fn fallback_shard(depths: &[usize], home: usize) -> Option<usize> {
    depths
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != home)
        .min_by_key(|(i, d)| (**d, *i))
        .map(|(i, _)| i)
}

fn write_line(mut stream: &TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

fn accept_loop(listener: &TcpListener, cfg: &ServerConfig, shared: &Arc<Shared>) {
    let n = shared.shards.len();
    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        // The acceptor outlives the executors: it closes only after
        // every shard has flushed its queue, so clients that connected
        // before the drain keep a live socket until they are answered.
        if stopping && shared.drained.load(Ordering::SeqCst) >= n {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stopping {
                    let _ = write_line(
                        &stream,
                        &wire::render_error("shutting_down", "server is draining", None),
                    );
                    continue;
                }
                if shared.conns.load(Ordering::SeqCst) >= cfg.max_connections {
                    // Per-connection limit: refuse at the door with a
                    // proper response, then close.
                    let _ = write_line(
                        &stream,
                        &wire::render_error("overloaded", "connection limit reached", None),
                    );
                    continue;
                }
                shared.conns.fetch_add(1, Ordering::SeqCst);
                let h_shared = Arc::clone(shared);
                let h_cfg = cfg.clone();
                let spawned =
                    thread::Builder::new().name("qpl-serve-conn".to_string()).spawn(move || {
                        handle_connection(&stream, &h_cfg, &h_shared);
                        h_shared.conns.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    shared.conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

enum LineEvent {
    Line(String),
    TooLong,
    TimedOut,
    Closed,
}

/// Incremental line framing over a read-timeout socket.
struct LineReader {
    buf: Vec<u8>,
    start: usize,
    max: usize,
}

impl LineReader {
    fn new(max: usize) -> Self {
        Self { buf: Vec::new(), start: 0, max }
    }

    fn next_line(&mut self, mut stream: &TcpStream) -> LineEvent {
        loop {
            if let Some(nl) = self.buf[self.start..].iter().position(|&b| b == b'\n') {
                let line =
                    String::from_utf8_lossy(&self.buf[self.start..self.start + nl]).into_owned();
                self.start += nl + 1;
                return LineEvent::Line(line);
            }
            if self.buf.len() - self.start > self.max {
                return LineEvent::TooLong;
            }
            if self.start > 0 {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.len() > self.start {
                        // Final unterminated line: still serve it.
                        let line = String::from_utf8_lossy(&self.buf[self.start..]).into_owned();
                        self.buf.clear();
                        self.start = 0;
                        return LineEvent::Line(line);
                    }
                    return LineEvent::Closed;
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return LineEvent::TimedOut;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return LineEvent::Closed,
            }
        }
    }
}

enum Reply {
    Line(String),
    Bye(String),
    Closed,
}

fn handle_connection(stream: &TcpStream, cfg: &ServerConfig, shared: &Shared) {
    // Nagle off: responses are single short lines and latency-bound.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.read_poll));
    let mut reader = LineReader::new(cfg.max_line_bytes);
    loop {
        match reader.next_line(stream) {
            LineEvent::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                match handle_line(&line, cfg, shared) {
                    Reply::Line(resp) => {
                        if write_line(stream, &resp).is_err() {
                            break;
                        }
                    }
                    Reply::Bye(resp) => {
                        let _ = write_line(stream, &resp);
                        break;
                    }
                    Reply::Closed => break,
                }
            }
            LineEvent::TooLong => {
                let _ = write_line(
                    stream,
                    &wire::render_error("bad_request", "line exceeds max_line_bytes", None),
                );
                break;
            }
            LineEvent::TimedOut => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            LineEvent::Closed => break,
        }
    }
}

fn handle_line(line: &str, cfg: &ServerConfig, shared: &Shared) -> Reply {
    let max_batch = cfg.max_batch.min(LANES);
    let req = match wire::parse_request(line, max_batch) {
        Ok(r) => r,
        Err(detail) => return Reply::Line(wire::render_error("bad_request", &detail, None)),
    };
    match req {
        Request::Ping => Reply::Line(wire::render_pong()),
        Request::Shutdown => {
            initiate_shutdown(shared);
            Reply::Bye(wire::render_bye())
        }
        Request::Stats => collect_stats(shared),
        Request::Update { insert, retract, id } => apply_update(insert, retract, id, shared),
        Request::Checkpoint { id } => request_checkpoint(id, shared),
        Request::Query { q, id } => submit(vec![q], id, false, shared),
        Request::Batch { qs, id } => submit(qs, id, true, shared),
    }
}

/// Renders a [`ControlError`] as the matching wire error line.
fn control_error_line(e: &ControlError, id: Option<u64>) -> String {
    match e {
        ControlError::Invalid(detail) => wire::render_error("bad_request", detail, id),
        ControlError::Store(detail) => wire::render_error("store_unavailable", detail, id),
    }
}

/// Enqueues one update control on `sq` and returns the ack channel.
fn offer_update(
    sq: &ShardQueue,
    insert: &Arc<Vec<String>>,
    retract: &Arc<Vec<String>>,
) -> mpsc::Receiver<Result<UpdateAck, ControlError>> {
    let (tx, rx) = mpsc::channel();
    {
        let mut st = lock_unpoisoned(&sq.state);
        st.control.push_back(Control::Update {
            insert: Arc::clone(insert),
            retract: Arc::clone(retract),
            resp: tx,
        });
    }
    sq.cv.notify_all();
    rx
}

/// Applies a KB delta across the fleet, shard 0 first: shard 0
/// validates the whole delta, journals it to the WAL (when durability
/// is on — the ack is sent only after the covering group commit, so an
/// acked update survives a kill), and applies it; only then is the
/// delta broadcast to replicas 1..n. A validation or store failure on
/// shard 0 therefore leaves every replica untouched — the fleet can
/// never diverge on an error path. Shards apply deltas between planes;
/// because each shard validates the full delta against its identical
/// replica before applying, either every shard applies it or none
/// does, and the per-shard `deltas_applied` counters stay equal.
fn apply_update(
    insert: Vec<String>,
    retract: Vec<String>,
    id: Option<u64>,
    shared: &Shared,
) -> Reply {
    if shared.stop.load(Ordering::SeqCst) {
        return Reply::Line(wire::render_error("shutting_down", "server is draining", id));
    }
    let insert = Arc::new(insert);
    let retract = Arc::new(retract);
    let rx0 = offer_update(&shared.shards[0], &insert, &retract);
    let Ok(ack0) = rx0.recv() else {
        return Reply::Closed;
    };
    let ack0 = match ack0 {
        Ok(a) => a,
        Err(e) => return Reply::Line(control_error_line(&e, id)),
    };
    let mut deltas_applied = ack0.deltas_applied;
    let mut pending = Vec::with_capacity(shared.shards.len().saturating_sub(1));
    for sq in &shared.shards[1..] {
        pending.push(offer_update(sq, &insert, &retract));
    }
    for rx in pending {
        let Ok(ack) = rx.recv() else {
            return Reply::Closed;
        };
        match ack {
            // Identical replicas change identically; report shard 0's
            // fact counts and the max applied-delta counter (they
            // agree when convergent).
            Ok(a) => deltas_applied = deltas_applied.max(a.deltas_applied),
            Err(e) => return Reply::Line(control_error_line(&e, id)),
        }
    }
    Reply::Line(wire::render_updated(ack0.inserted, ack0.retracted, deltas_applied, id))
}

/// Routes a `checkpoint` request to the store-owning shard (0) and
/// renders its outcome.
fn request_checkpoint(id: Option<u64>, shared: &Shared) -> Reply {
    if shared.stop.load(Ordering::SeqCst) {
        return Reply::Line(wire::render_error("shutting_down", "server is draining", id));
    }
    let (tx, rx) = mpsc::channel();
    let sq = &shared.shards[0];
    {
        let mut st = lock_unpoisoned(&sq.state);
        st.control.push_back(Control::Checkpoint { resp: tx });
    }
    sq.cv.notify_all();
    let Ok(outcome) = rx.recv() else {
        return Reply::Closed;
    };
    match outcome {
        Ok(info) => Reply::Line(wire::render_checkpointed(
            info.through_seq,
            info.snapshot_bytes,
            info.segments_removed,
            id,
        )),
        Err(e) => Reply::Line(control_error_line(&e, id)),
    }
}

/// Fans a stats control to every shard, merges the slices (counters
/// add, sinks merge, service rings pool for fleet-wide percentiles)
/// into one response line.
fn collect_stats(shared: &Shared) -> Reply {
    let mut pending = Vec::with_capacity(shared.shards.len());
    for sq in &shared.shards {
        let (tx, rx) = mpsc::channel();
        {
            let mut st = lock_unpoisoned(&sq.state);
            st.control.push_back(Control::Stats { resp: tx });
        }
        sq.cv.notify_all();
        pending.push(rx);
    }
    let mut views = Vec::with_capacity(pending.len());
    let mut merged_sink = MemorySink::new();
    let mut all_us: Vec<f64> = Vec::new();
    let (mut queue_lanes, mut served, mut batches) = (0u64, 0u64, 0u64);
    let (mut errors, mut climbs, mut adoptions) = (0u64, 0u64, 0u64);
    let (mut plane_lanes, mut executed_lanes, mut deltas_applied) = (0u64, 0u64, 0u64);
    let mut width_planes = [0u64; 4];
    let mut store_view = None;
    for (shard, rx) in pending.into_iter().enumerate() {
        let Ok(s) = rx.recv() else {
            return Reply::Closed;
        };
        if s.store.is_some() {
            store_view = s.store.clone();
        }
        queue_lanes += s.queue_lanes;
        served += s.served;
        batches += s.batches;
        plane_lanes += s.plane_lanes;
        for (acc, w) in width_planes.iter_mut().zip(s.width_planes) {
            *acc += w;
        }
        errors += s.errors;
        climbs += s.climbs;
        adoptions += s.adoptions;
        executed_lanes += s.executed_lanes;
        deltas_applied += s.deltas_applied;
        merged_sink.merge_from(&s.sink);
        let mut us = s.service_us;
        us.sort_by(f64::total_cmp);
        views.push(ShardStatsView {
            shard: shard as u64,
            queue_lanes: s.queue_lanes,
            served: s.served,
            batches: s.batches,
            declined: s.declined,
            errors: s.errors,
            climbs: s.climbs,
            adoptions: s.adoptions,
            deltas_applied: s.deltas_applied,
            fill_ratio: fill_ratio(s.executed_lanes, s.plane_lanes),
            p50_us: percentile_sorted(&us, 0.50),
            p99_us: percentile_sorted(&us, 0.99),
            strategy_fp: format!("{:016x}", s.strategy_fp),
        });
        all_us.extend_from_slice(&us);
    }
    // Handler-level counters live in `Shared`, not any shard's sink;
    // stamp them into the merged snapshot so the metrics line is
    // complete on its own.
    let steer_fallbacks = shared.steer_fallbacks.load(Ordering::Relaxed);
    merged_sink.counter(names::SHARD_STEER_FALLBACKS, steer_fallbacks);
    all_us.sort_by(f64::total_cmp);
    let view = StatsView {
        queue_lanes,
        served,
        batches,
        shed: shared.refused.load(Ordering::Relaxed),
        errors,
        climbs,
        adoptions,
        steer_fallbacks,
        deltas_applied,
        fill_ratio: fill_ratio(executed_lanes, plane_lanes),
        width_planes,
        p50_us: percentile_sorted(&all_us, 0.50),
        p99_us: percentile_sorted(&all_us, 0.99),
        shards: views,
        store: store_view,
        metrics_line: JsonSnapshot::capture(&merged_sink).as_line(),
    };
    Reply::Line(wire::render_stats(&view))
}

/// Occupied fraction of executed plane capacity. `executed` counts
/// lanes that ran in a plane (cache-hit lanes never occupy capacity);
/// `capacity_lanes` sums each plane's width × 64 lanes, so a shard that
/// widens under load is judged against the capacity it actually cut. A
/// shard that executed nothing reports 0.0, never NaN.
fn fill_ratio(executed: u64, capacity_lanes: u64) -> f64 {
    if capacity_lanes > 0 {
        executed as f64 / capacity_lanes as f64
    } else {
        0.0
    }
}

/// Percentile over an already-sorted sample buffer.
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

enum Admit {
    Ok,
    Draining,
    Full(Job),
}

fn try_offer(shared: &Shared, shard: usize, job: Job) -> Admit {
    let sq = &shared.shards[shard];
    let mut st = lock_unpoisoned(&sq.state);
    if st.draining {
        return Admit::Draining;
    }
    match st.batcher.offer(job, Instant::now()) {
        Ok(()) => {
            sq.depth.store(st.batcher.lanes_queued(), Ordering::Relaxed);
            drop(st);
            sq.cv.notify_all();
            Admit::Ok
        }
        Err(job) => Admit::Full(job),
    }
}

fn submit(texts: Vec<String>, id: Option<u64>, batch: bool, shared: &Shared) -> Reply {
    let (tx, rx) = mpsc::channel();
    let n = shared.shards.len();
    let home = steer_shard(texts.first().map_or("", String::as_str), n);
    let job = Job { texts, id, batch, resp: tx };
    let declined = match try_offer(shared, home, job) {
        Admit::Ok => None,
        Admit::Draining => {
            return Reply::Line(wire::render_error("shutting_down", "server is draining", id))
        }
        Admit::Full(job) => Some(job),
    };
    if let Some(job) = declined {
        let depths: Vec<usize> =
            shared.shards.iter().map(|s| s.depth.load(Ordering::Relaxed)).collect();
        let admitted = match fallback_shard(&depths, home) {
            Some(alt) => match try_offer(shared, alt, job) {
                Admit::Ok => {
                    shared.steer_fallbacks.fetch_add(1, Ordering::Relaxed);
                    true
                }
                Admit::Draining => {
                    return Reply::Line(wire::render_error(
                        "shutting_down",
                        "server is draining",
                        id,
                    ))
                }
                Admit::Full(_) => false,
            },
            None => false,
        };
        if !admitted {
            shared.refused.fetch_add(1, Ordering::Relaxed);
            return Reply::Line(wire::render_error("overloaded", "request queue full", id));
        }
    }
    match rx.recv() {
        Ok(resp) => Reply::Line(resp),
        Err(_) => Reply::Closed,
    }
}

/// Fixed-capacity ring of recent per-request service times (µs) for
/// percentile reporting.
struct ServiceRing {
    buf: Vec<f64>,
    pos: usize,
    cap: usize,
}

impl ServiceRing {
    fn new(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap), pos: 0, cap }
    }

    fn push(&mut self, v: f64) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.pos] = v;
            self.pos = (self.pos + 1) % self.cap;
        }
    }

    fn samples(&self) -> &[f64] {
        &self.buf
    }
}

/// Everything one executor shard owns — a complete, private replica of
/// the engine plus this shard's counters. No field is visible to any
/// other shard.
struct Executor<'g> {
    table: SymbolTable,
    compiled: &'g CompiledGraph,
    g: &'g InferenceGraph,
    db: Database,
    qp: QueryProcessor<'g>,
    pib: Option<Pib>,
    current_fp: u64,
    /// Last strategy-board epoch this shard acted on.
    board_seen: u64,
    /// Per-shard answer memo, probed per lane before classification.
    /// Footprint-scoped revalidation keeps it warm across KB deltas
    /// that miss the compiled graph's retrieval predicates.
    run_cache: RunCache,
    /// The retrieval predicates this shard's compiled graph can probe —
    /// the memo's invalidation scope.
    footprint: DependencyFootprint,
    /// `run_cache.stats().invalidations` already emitted as the
    /// selective-invalidation counter.
    rc_invalidations_seen: u64,
    /// The durable store; only shard 0 holds one. Updates journal here
    /// before they apply, strategies journal on climb/adoption, and
    /// `checkpoint` snapshots through it.
    store: Option<Store>,
    /// Set on the first store I/O failure: updates are shed with
    /// `store_unavailable` from then on, reads keep serving.
    store_degraded: bool,
    /// WAL records replayed at startup (shard 0, surfaced in `stats`).
    records_replayed: u64,
    /// KB deltas applied by this shard.
    deltas_applied: u64,
    /// Lanes actually executed in planes (fill numerator; cache-hit
    /// lanes are served without occupying plane capacity).
    executed_lanes: u64,
    sink: MemorySink,
    served: u64,
    batches: u64,
    /// Summed lane *capacity* of executed planes (width × 64 each) —
    /// the width-aware fill-ratio denominator.
    plane_lanes: u64,
    /// Planes executed at width 1/2/4/8, indexed by log2(width).
    width_planes: [u64; 4],
    errors: u64,
    climbs: u64,
    adoptions: u64,
    declined_emitted: u64,
    ring: ServiceRing,
    // Plane-assembly buffers, reused across planes.
    atoms: Vec<Atom>,
    /// Memo key per executed lane, parallel to `atoms`; results insert
    /// back into `run_cache` after the plane runs.
    keys: Vec<Vec<Symbol>>,
    slots: Vec<(usize, usize)>,
    scratch: BatchScratch,
    lane_out: Vec<(QueryAnswer, f64)>,
    results: Vec<Vec<Option<LaneResult>>>,
}

fn executor_loop(
    shard: usize,
    engine: ServeEngine,
    init: ShardInit,
    cfg: ServerConfig,
    shared: &Shared,
) {
    let ServeEngine { table, compiled, db } = engine;
    let mut qp = QueryProcessor::left_to_right(&compiled);
    // Recovery-aware learner startup: a restored learner resumes its
    // Chernoff statistics exactly where the killed process stopped; a
    // fresh learner under a recovered strategy starts its climb there.
    let pib = match (cfg.adapt_delta, init.pib) {
        (Some(_), Some(restored)) => Some(restored),
        (Some(delta), None) => {
            let initial = init.strategy.clone().unwrap_or_else(|| qp.strategy().clone());
            Some(Pib::new(&compiled.graph, initial, PibConfig::new(delta)))
        }
        (None, _) => None,
    };
    if let Some(p) = &pib {
        qp.set_strategy(p.strategy().clone());
    } else if let Some(s) = init.strategy {
        qp.set_strategy(s);
    }
    let current_fp = qp.strategy().fingerprint();
    let mut ex = Executor {
        table,
        g: &compiled.graph,
        db,
        current_fp,
        board_seen: 0,
        qp,
        pib,
        run_cache: RunCache::new(),
        footprint: DependencyFootprint::of_compiled(&compiled),
        rc_invalidations_seen: 0,
        store: init.store,
        store_degraded: false,
        records_replayed: init.records_replayed,
        deltas_applied: 0,
        executed_lanes: 0,
        sink: MemorySink::new(),
        served: 0,
        batches: 0,
        plane_lanes: 0,
        width_planes: [0; 4],
        errors: 0,
        climbs: 0,
        adoptions: 0,
        declined_emitted: 0,
        ring: ServiceRing::new(4096),
        atoms: Vec::new(),
        keys: Vec::new(),
        slots: Vec::new(),
        scratch: BatchScratch::new(&compiled.graph),
        lane_out: Vec::new(),
        results: Vec::new(),
        compiled: &compiled,
    };
    if ex.store.is_some() {
        if ex.records_replayed > 0 {
            ex.sink.counter(store_names::RECOVERY_REPLAYED, ex.records_replayed);
        }
        if init.torn_tail {
            ex.sink.counter("store.recovery.torn_tail", 1);
        }
    }
    let sq = &shared.shards[shard];
    let mut jobs: Vec<(Job, Instant)> = Vec::new();
    let mut controls: Vec<Control> = Vec::new();
    loop {
        controls.clear();
        jobs.clear();
        let exit;
        let (queue_lanes, declined) = {
            let mut st = lock_unpoisoned(&sq.state);
            loop {
                while let Some(c) = st.control.pop_front() {
                    controls.push(c);
                }
                let now = Instant::now();
                let ready =
                    st.batcher.ready(now, cfg.max_wait) || (st.draining && !st.batcher.is_empty());
                if ready {
                    // Under load the cut widens (up to 512 lanes) so one
                    // dispatch drains what would otherwise take eight.
                    let cap = plane_width_for_depth(st.batcher.lanes_queued()) * LANES;
                    st.batcher.cut_plane(cap, &mut jobs);
                }
                if ready || !controls.is_empty() || (st.draining && st.batcher.is_empty()) {
                    exit = st.draining && st.batcher.is_empty() && jobs.is_empty();
                    sq.depth.store(st.batcher.lanes_queued(), Ordering::Relaxed);
                    break (st.batcher.lanes_queued() as u64, st.batcher.shed_count());
                }
                st = match st.batcher.deadline(cfg.max_wait) {
                    Some(deadline) => {
                        let wait = deadline.saturating_duration_since(Instant::now());
                        sq.cv
                            .wait_timeout(st, wait)
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .0
                    }
                    None => sq.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner),
                };
            }
        };
        if declined > ex.declined_emitted {
            ex.sink.counter(names::SHED, declined - ex.declined_emitted);
            ex.declined_emitted = declined;
        }
        ex.process_controls(&mut controls, queue_lanes, declined);
        if !jobs.is_empty() {
            ex.adopt_published(shared);
            ex.process_plane(&mut jobs, shared);
        }
        if exit {
            shared.drained.fetch_add(1, Ordering::SeqCst);
            break;
        }
    }
}

/// Parses one `update` fact text: must parse as an atom and be fully
/// ground (constants only).
fn parse_ground_fact(text: &str, table: &mut SymbolTable) -> Result<Fact, String> {
    let atom = parse_query(text, table).map_err(|e| e.to_string())?;
    let mut args = Vec::with_capacity(atom.args.len());
    for t in &atom.args {
        match t {
            Term::Const(s) => args.push(*s),
            Term::Var(_) => return Err(format!("update facts must be ground: {text:?}")),
        }
    }
    Ok(Fact::new(atom.predicate, args))
}

/// One validated, journaled, not-yet-applied update plus its ack
/// channel.
struct StagedDelta {
    insert: Vec<Fact>,
    retract: Vec<Fact>,
    resp: mpsc::Sender<Result<UpdateAck, ControlError>>,
}

impl Executor<'_> {
    /// Serves one control batch. Updates are staged — validated,
    /// journaled, but not applied — until the whole batch has been
    /// walked, then one group commit covers every journaled record and
    /// the staged deltas apply and ack in order. Journal-before-apply
    /// means a commit failure leaves this replica exactly where its
    /// peers are (nothing applied, nothing acked); commit-before-ack
    /// means an acked update is on disk even under `EveryBatch` fsync.
    fn process_controls(&mut self, controls: &mut Vec<Control>, queue_lanes: u64, declined: u64) {
        let mut staged: Vec<StagedDelta> = Vec::new();
        for control in controls.drain(..) {
            match control {
                Control::Stats { resp } => {
                    let _ = resp.send(self.shard_stats(queue_lanes, declined));
                }
                Control::Update { insert, retract, resp } => {
                    match self.stage_delta(&insert, &retract) {
                        Ok((ins, ret)) => {
                            staged.push(StagedDelta { insert: ins, retract: ret, resp });
                        }
                        Err(e) => {
                            let _ = resp.send(Err(e));
                        }
                    }
                }
                Control::Checkpoint { resp } => {
                    // Earlier updates in this batch must be covered by
                    // the checkpoint: flush them first.
                    self.flush_staged(&mut staged);
                    let _ = resp.send(self.do_checkpoint());
                }
            }
        }
        self.flush_staged(&mut staged);
    }

    /// Validates one KB delta against this shard's replica and, on the
    /// store-owning shard, journals it.
    ///
    /// Validation is all-or-nothing: every fact must parse, be ground,
    /// and agree on arity (with the stored relation and within the
    /// delta) *before* anything is journaled or applied. Identical
    /// replicas therefore reach identical verdicts — either every
    /// shard applies the delta or every shard refuses it — which keeps
    /// the shared-nothing fleet convergent.
    fn stage_delta(
        &mut self,
        insert: &[String],
        retract: &[String],
    ) -> Result<(Vec<Fact>, Vec<Fact>), ControlError> {
        if self.store_degraded {
            return Err(ControlError::Store(
                "store degraded by an earlier I/O failure; updates are shed".to_string(),
            ));
        }
        let mut arities: HashMap<Symbol, usize> = HashMap::new();
        let mut validate = |texts: &[String],
                            table: &mut SymbolTable,
                            db: &Database|
         -> Result<Vec<Fact>, String> {
            let mut facts = Vec::with_capacity(texts.len());
            for text in texts {
                let fact = parse_ground_fact(text, table)?;
                let arity = *arities
                    .entry(fact.predicate)
                    .or_insert_with(|| db.arity(fact.predicate).unwrap_or(fact.args.len()));
                if fact.args.len() != arity {
                    return Err(format!("arity mismatch for {text:?}: expected {arity} arguments"));
                }
                facts.push(fact);
            }
            Ok(facts)
        };
        let ins = validate(insert, &mut self.table, &self.db).map_err(ControlError::Invalid)?;
        let ret = validate(retract, &mut self.table, &self.db).map_err(ControlError::Invalid)?;
        if let Some(store) = &mut self.store {
            let record = Record::Delta { insert: insert.to_vec(), retract: retract.to_vec() };
            match store.append(&record) {
                Ok(_) => self.sink.counter(store_names::WAL_APPENDS, 1),
                Err(e) => {
                    let detail = e.to_string();
                    self.mark_degraded(&e);
                    return Err(ControlError::Store(detail));
                }
            }
        }
        Ok((ins, ret))
    }

    /// Group-commits the WAL records behind `staged`, then applies and
    /// acks each staged delta in order. On commit failure nothing
    /// applies: every staged update is refused with `store_unavailable`
    /// and the shard enters degraded mode.
    fn flush_staged(&mut self, staged: &mut Vec<StagedDelta>) {
        if staged.is_empty() {
            return;
        }
        if let Some(store) = &mut self.store {
            match store.commit() {
                Ok(()) => self.sink.counter(store_names::WAL_COMMITS, 1),
                Err(e) => {
                    let detail = e.to_string();
                    self.mark_degraded(&e);
                    for s in staged.drain(..) {
                        let _ = s.resp.send(Err(ControlError::Store(detail.clone())));
                    }
                    return;
                }
            }
        }
        for s in staged.drain(..) {
            let ack = self.apply_validated(s.insert, s.retract);
            let _ = s.resp.send(Ok(ack));
        }
    }

    /// Applies one already-validated (and, where durable, committed)
    /// delta. Deltas apply between planes: every plane executes
    /// against a single database state.
    fn apply_validated(&mut self, insert: Vec<Fact>, retract: Vec<Fact>) -> UpdateAck {
        let (mut inserted, mut retracted) = (0u64, 0u64);
        for f in insert {
            // Validation pinned the arity, so insert cannot fail.
            if self.db.insert(f).map(|d| d.changed).unwrap_or(false) {
                inserted += 1;
            }
        }
        for f in retract {
            if self.db.retract(f).map(|d| d.changed).unwrap_or(false) {
                retracted += 1;
            }
        }
        self.deltas_applied += 1;
        self.sink.counter(names::KB_DELTA_APPLIED, 1);
        self.sink.counter(names::KB_DELTA_INSERTED, inserted);
        self.sink.counter(names::KB_DELTA_RETRACTED, retracted);
        // Footprint-scoped revalidation: the answer memo goes cold only
        // when the delta touched a predicate this shard's compiled
        // graph actually retrieves.
        self.revalidate_run_cache();
        UpdateAck { inserted, retracted, deltas_applied: self.deltas_applied }
    }

    /// Flips the shard into degraded mode: updates are shed with
    /// `store_unavailable` from now on, reads keep serving from the
    /// in-memory replica.
    fn mark_degraded(&mut self, err: &StoreError) {
        if !self.store_degraded {
            self.store_degraded = true;
            self.sink.counter(store_names::DEGRADED, 1);
            eprintln!("qpl-serve: store degraded, shedding updates: {err}");
        }
    }

    /// Journals the newly adopted strategy (climb or peer adoption) on
    /// the store-owning shard, committed immediately — strategy changes
    /// are rare and must survive a kill without waiting for the next
    /// update batch.
    fn journal_strategy(&mut self, fingerprint: u64) {
        if self.store_degraded {
            return;
        }
        let arcs: Vec<u32> = self.qp.strategy().arcs().iter().map(|a| a.0).collect();
        let Some(store) = &mut self.store else {
            return;
        };
        let result =
            store.append(&Record::Strategy { fingerprint, arcs }).and_then(|_| store.commit());
        match result {
            Ok(()) => {
                self.sink.counter(store_names::WAL_APPENDS, 1);
                self.sink.counter(store_names::WAL_COMMITS, 1);
            }
            Err(e) => self.mark_degraded(&e),
        }
    }

    /// Builds the full checkpoint snapshot of this shard's durable
    /// state: the fact dump (sorted, re-parsable), generation stamps,
    /// the adopted strategy, and the learner's exported statistics.
    fn build_snapshot(&self) -> Snapshot {
        let mut pred_gens: Vec<(String, u64)> = self
            .db
            .predicate_generations()
            .map(|(p, g)| (self.table.name(p).to_string(), g))
            .collect();
        pred_gens.sort();
        Snapshot {
            facts: self.db.dump(&self.table),
            generation: self.db.generation(),
            pred_gens,
            strategy: Some(StrategyState {
                fingerprint: self.current_fp,
                arcs: self.qp.strategy().arcs().iter().map(|a| a.0).collect(),
            }),
            pib: self.pib.as_ref().map(|p| pib_state_to_snapshot(&p.export_state())),
        }
    }

    /// Writes a checkpoint through the store: atomic snapshot, then
    /// truncation of the WAL it covers.
    fn do_checkpoint(&mut self) -> Result<CheckpointInfo, ControlError> {
        if self.store.is_none() {
            return Err(ControlError::Store("server started without a data directory".to_string()));
        }
        if self.store_degraded {
            return Err(ControlError::Store(
                "store degraded by an earlier I/O failure".to_string(),
            ));
        }
        let snapshot = self.build_snapshot();
        let result = self.store.as_mut().expect("checked above").checkpoint(&snapshot);
        match result {
            Ok(info) => {
                self.sink.counter(store_names::CHECKPOINTS, 1);
                Ok(info)
            }
            Err(e) => {
                let detail = e.to_string();
                self.mark_degraded(&e);
                Err(ControlError::Store(detail))
            }
        }
    }

    /// Revalidates the per-shard answer memo against the current
    /// database + strategy, counting any flush as a selective
    /// invalidation (the validity key is footprint-scoped, so only
    /// relevant deltas can move it).
    fn revalidate_run_cache(&mut self) {
        self.run_cache.revalidate_scoped(&self.db, &self.footprint, self.current_fp);
        let inv = self.run_cache.stats().invalidations;
        if inv > self.rc_invalidations_seen {
            self.sink
                .counter(cache_names::SELECTIVE_INVALIDATIONS, inv - self.rc_invalidations_seen);
            self.rc_invalidations_seen = inv;
        }
    }

    /// Polls the strategy board (one atomic load on the fast path) and
    /// adopts the published strategy when its fingerprint differs from
    /// this shard's current program.
    fn adopt_published(&mut self, shared: &Shared) {
        let Some(pib) = &mut self.pib else {
            return;
        };
        let epoch = shared.board.epoch.load(Ordering::Acquire);
        if epoch == self.board_seen {
            return;
        }
        self.board_seen = epoch;
        let published = {
            let slot = lock_unpoisoned(&shared.board.slot);
            match slot.as_ref() {
                Some((fp, strategy)) if *fp != self.current_fp => Some((*fp, strategy.clone())),
                _ => None,
            }
        };
        if let Some((fp, strategy)) = published {
            pib.adopt(self.g, strategy.clone());
            self.qp.set_strategy(strategy);
            self.current_fp = fp;
            self.adoptions += 1;
            self.sink.counter(names::SHARD_ADOPTIONS, 1);
            // The adopted fingerprint is durable state: a warm restart
            // must come back serving the strategy the fleet agreed on.
            self.journal_strategy(fp);
        }
    }

    /// Serves one cut plane: classify every query into a lane, execute
    /// the plane bit-parallel (bit-identical to scalar runs), respond
    /// to every job, feed the contexts to the adaptation loop, publish
    /// any accepted climb to the peer shards.
    fn process_plane(&mut self, jobs: &mut Vec<(Job, Instant)>, shared: &Shared) {
        let t0 = Instant::now();
        self.results.clear();
        self.results.extend(jobs.iter().map(|(job, _)| vec![None; job.texts.len()]));
        self.atoms.clear();
        self.keys.clear();
        self.slots.clear();
        // One revalidation per plane: deltas apply between planes, so
        // every lane probes the memo under the same validity key.
        self.revalidate_run_cache();
        let mut lanes = 0usize;
        let mut cache_hits = 0u64;
        let mut plane_errors = 0u64;
        for (ji, (job, _)) in jobs.iter().enumerate() {
            for (si, text) in job.texts.iter().enumerate() {
                let parsed = parse_query(text, &mut self.table).map_err(|e| e.to_string());
                // Memo probe before classification: a warm hit answers
                // the lane (bit-identical answer and cost, memoized from
                // an earlier plane) without occupying plane capacity.
                if let Ok(atom) = &parsed {
                    if self.compiled.form.matches(atom) {
                        let key = self.compiled.form.bound_constants(atom);
                        if let Some((answer, cost)) = self.run_cache.get(&key) {
                            self.results[ji][si] = Some(match answer {
                                QueryAnswer::Yes(w) => LaneResult::Yes {
                                    witness: w.display(&self.table).to_string(),
                                    cost: *cost,
                                },
                                QueryAnswer::No => LaneResult::No { cost: *cost },
                            });
                            cache_hits += 1;
                            continue;
                        }
                    }
                }
                let classified = parsed.and_then(|atom| {
                    classify_context_into(
                        self.compiled,
                        &atom,
                        &self.db,
                        self.scratch.pool_context(self.g, lanes),
                    )
                    .map(|()| atom)
                    .map_err(|e| e.to_string())
                });
                match classified {
                    Ok(atom) => {
                        self.keys.push(self.compiled.form.bound_constants(&atom));
                        self.atoms.push(atom);
                        self.slots.push((ji, si));
                        lanes += 1;
                    }
                    Err(detail) => {
                        plane_errors += 1;
                        self.results[ji][si] = Some(LaneResult::Error { detail });
                    }
                }
            }
        }
        debug_assert!(lanes <= MAX_LANES, "the batcher never cuts past the widest plane");
        if lanes > 0 {
            self.scratch.assemble_pool_plane(self.g.arc_count(), lanes);
            self.lane_out.clear();
            let (batch, run, scalar) = self.scratch.plane_parts_mut();
            self.qp
                .run_classified_batch(&self.atoms, &self.db, batch, run, scalar, &mut self.lane_out)
                .expect("plane is assembled against the shard's own graph");
            for (lane, (answer, cost)) in self.lane_out.iter().enumerate() {
                let (ji, si) = self.slots[lane];
                self.results[ji][si] = Some(match answer {
                    QueryAnswer::Yes(atom) => LaneResult::Yes {
                        witness: atom.display(&self.table).to_string(),
                        cost: *cost,
                    },
                    QueryAnswer::No => LaneResult::No { cost: *cost },
                });
                // Memoize for later planes (and revalidated deltas).
                self.run_cache.insert(std::mem::take(&mut self.keys[lane]), answer.clone(), *cost);
            }
            let width = width_for_lanes(lanes);
            self.served += lanes as u64;
            self.executed_lanes += lanes as u64;
            self.batches += 1;
            self.plane_lanes += (width * LANES) as u64;
            self.width_planes[width.trailing_zeros() as usize] += 1;
            self.sink.counter(names::QUERIES, lanes as u64);
            self.sink.counter(names::BATCHES, 1);
            self.sink.value(names::BATCH_FILL, lanes as f64 / (width * LANES) as f64);
            self.sink.value(names::PLANE_WIDTH, width as f64);
            // Online adaptation: the served plane *is* the PIB sample
            // batch. On an accepted climb, swap the processor's compiled
            // program (fingerprint-memoized inside set_strategy) and
            // publish the strategy so peer shards can adopt it.
            if let Some(pib) = &mut self.pib {
                pib.observe_batch(self.g, self.scratch.batch());
                let fp = pib.strategy().fingerprint();
                if fp != self.current_fp {
                    self.qp.set_strategy(pib.strategy().clone());
                    self.current_fp = fp;
                    let accepted = pib.history().len() as u64;
                    self.sink.counter(names::CLIMBS, accepted - self.climbs);
                    self.climbs = accepted;
                    {
                        let mut slot = lock_unpoisoned(&shared.board.slot);
                        *slot = Some((fp, pib.strategy().clone()));
                    }
                    shared.board.epoch.fetch_add(1, Ordering::Release);
                    self.sink.counter(names::SHARD_PUBLISHED, 1);
                    self.journal_strategy(fp);
                }
            }
        }
        if cache_hits > 0 {
            // Hit lanes are served queries too — they just never cost
            // plane capacity, so they stay out of the fill numerator.
            self.served += cache_hits;
            self.sink.counter(names::QUERIES, cache_hits);
            self.sink.counter("serve.cache.hits", cache_hits);
        }
        if plane_errors > 0 {
            self.errors += plane_errors;
            self.sink.counter(names::ERRORS, plane_errors);
        }
        self.sink.span_ns(names::EXEC, t0.elapsed().as_nanos() as u64);
        let done = Instant::now();
        for ((job, enqueued), row) in jobs.drain(..).zip(self.results.drain(..)) {
            let filled: Vec<LaneResult> =
                row.into_iter().map(|r| r.expect("every lane filled")).collect();
            let line = if job.batch {
                wire::render_answers(&filled, job.id)
            } else {
                wire::render_answer(&filled[0], job.id)
            };
            // A send error means the client hung up; the work is done
            // either way.
            let _ = job.resp.send(line);
            let us = done.duration_since(enqueued).as_secs_f64() * 1e6;
            self.ring.push(us);
            self.sink.value(names::SERVICE_US, us);
        }
    }

    fn shard_stats(&self, queue_lanes: u64, declined: u64) -> ShardStats {
        ShardStats {
            queue_lanes,
            served: self.served,
            batches: self.batches,
            plane_lanes: self.plane_lanes,
            width_planes: self.width_planes,
            declined,
            errors: self.errors,
            climbs: self.climbs,
            adoptions: self.adoptions,
            deltas_applied: self.deltas_applied,
            executed_lanes: self.executed_lanes,
            service_us: self.ring.samples().to_vec(),
            strategy_fp: self.current_fp,
            store: self.store.as_ref().map(|store| {
                let st = store.status();
                wire::StoreStatsView {
                    wal_bytes: st.wal_bytes,
                    segments: st.segments,
                    records_appended: st.records_appended,
                    records_replayed: st.records_replayed,
                    last_checkpoint_unix_secs: st.last_checkpoint_unix_secs,
                    snapshot_bytes: st.snapshot_bytes,
                    degraded: self.store_degraded,
                }
            }),
            sink: self.sink.clone(),
        }
    }
}
