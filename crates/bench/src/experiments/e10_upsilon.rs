//! E10 — Υ_AOT optimality and the intractable general case.
//!
//! Paper claims: (a) "\[Smi89\] presents an efficient algorithm Υ_OT for
//! … simple disjunctive tree shaped inference graphs" — our block-merge
//! must match brute force over *all* path-form strategies; (b) "this
//! latter task is NP-hard for general graphs; see \[Gre91\]" — on the
//! paper's Note-5 DAG `{A :- B. B :- C. A :- C.}` no ratio-greedy tree
//! method applies, and only enumeration finds the optimum.

use crate::report::{fm, Report};
use qpl_core::upsilon_aot;
use qpl_graph::expected::{ContextDistribution, IndependentModel};
use qpl_graph::graph::GraphBuilder;
use qpl_graph::strategy::{count_dfs, enumerate_all};
use qpl_workload::generator::{random_retrieval_model, random_tree_with_retrievals, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E10 and returns the report.
pub fn run(seed: u64) -> Report {
    let mut r = Report::new("E10: Υ_AOT optimality (trees) and the general-graph gap");

    // (a) Optimality across random trees.
    let mut rng = StdRng::seed_from_u64(seed);
    let cases = 120;
    let mut checked = 0u32;
    let mut exact_matches = 0u32;
    let mut strategy_space: Vec<usize> = Vec::new();
    for _ in 0..cases {
        let g = random_tree_with_retrievals(&mut rng, &TreeParams::default(), 2, 5);
        let m = random_retrieval_model(&mut rng, &g, (0.02, 0.98));
        let s = upsilon_aot(&g, &m).expect("tree");
        let Some(all) = enumerate_all(&g, 1_000_000) else { continue };
        strategy_space.push(all.len());
        let best = all.iter().map(|t| m.expected_cost(&g, t)).fold(f64::INFINITY, f64::min);
        checked += 1;
        if (m.expected_cost(&g, &s) - best).abs() < 1e-9 {
            exact_matches += 1;
        }
    }
    strategy_space.sort_unstable();
    r.table(
        "block-merge vs exhaustive enumeration on random trees",
        &["quantity", "value"],
        vec![
            vec!["trees checked".into(), checked.to_string()],
            vec!["Υ_AOT exactly optimal".into(), exact_matches.to_string()],
            vec![
                "median / max strategy-space size".into(),
                format!(
                    "{} / {}",
                    strategy_space[strategy_space.len() / 2],
                    strategy_space.last().expect("non-empty")
                ),
            ],
        ],
    );

    // Scaling sanity: DFS strategy count explodes while Υ stays linear-ish.
    let mut scale_rows = Vec::new();
    for leaves in [4usize, 8, 12, 16] {
        let mut b = GraphBuilder::new("flat");
        let root = b.root();
        for i in 0..leaves {
            b.retrieval(root, &format!("D{i}"), 1.0 + i as f64);
        }
        let g = b.finish().expect("flat graph valid");
        scale_rows.push(vec![leaves.to_string(), format!("{:.3e}", count_dfs(&g))]);
    }
    r.table(
        "strategy-space size (flat graph, k! orderings) — why Υ matters",
        &["retrievals", "strategies"],
        scale_rows,
    );

    // (b) The Note-5 DAG: { A :- B. B :- C. A :- C. }. The single D_c
    // retrieval serves two routes, so tree path-form strategies cannot
    // express the complete behaviours; relaxed arc sequences can, and
    // they trade cost against completeness (the probability of finding
    // an existing derivation) — structure Υ_AOT cannot see.
    let mut b = GraphBuilder::new("A").allow_dag();
    let root = b.root();
    let (r_ab, nb) = b.reduction(root, "R_ab", 1.0, "B");
    let (r_bc, nc) = b.reduction(nb, "R_bc", 1.0, "C");
    let d_c = b.retrieval(nc, "D_c", 1.0);
    let r_ac = b.reduction_to(root, nc, "R_ac", 1.0);
    let dag = b.finish().expect("DAG allowed");
    let model = IndependentModel::from_fn(&dag, |a| {
        if a == d_c {
            0.5
        } else if a == r_bc {
            0.3 // B :- C often inapplicable
        } else if a == r_ac {
            0.6
        } else {
            0.9 // R_ab
        }
    })
    .expect("valid probs");
    assert!(!dag.is_tree());
    let upsilon_refuses = upsilon_aot(&dag, &model).is_err();

    let candidates: Vec<(&str, qpl_graph::Strategy)> = vec![
        (
            "⟨R_ac D_c R_ab R_bc⟩ (direct route only)",
            qpl_graph::Strategy::from_arcs_relaxed(&dag, vec![r_ac, d_c, r_ab, r_bc])
                .expect("valid relaxed"),
        ),
        (
            "⟨R_ab R_bc D_c R_ac⟩ (long route only)",
            qpl_graph::Strategy::from_arcs_relaxed(&dag, vec![r_ab, r_bc, d_c, r_ac])
                .expect("valid relaxed"),
        ),
        (
            "⟨R_ac R_ab R_bc D_c⟩ (all routes, then retrieve)",
            qpl_graph::Strategy::from_arcs_relaxed(&dag, vec![r_ac, r_ab, r_bc, d_c])
                .expect("valid relaxed"),
        ),
    ];
    // Exhaustive evaluation over the 2^4 contexts: expected cost and
    // completeness (finds a derivation whenever one exists).
    let arcs = [r_ab, r_bc, d_c, r_ac];
    let mut rows = Vec::new();
    let mut complete_flags = Vec::new();
    for (name, s) in &candidates {
        let mut cost = 0.0;
        let mut found = 0.0;
        let mut exists = 0.0;
        for mask in 0u32..16 {
            let ctx = qpl_graph::Context::from_fn(&dag, |a| {
                let i = arcs.iter().position(|&x| x == a).expect("4 arcs");
                mask & (1 << i) != 0
            });
            let w: f64 = arcs
                .iter()
                .enumerate()
                .map(
                    |(i, &a)| {
                        if mask & (1 << i) != 0 {
                            1.0 - model.prob(a)
                        } else {
                            model.prob(a)
                        }
                    },
                )
                .product();
            let trace = qpl_graph::context::execute(&dag, s, &ctx);
            cost += w * trace.cost;
            if trace.outcome.is_success() {
                found += w;
            }
            let derivable = !ctx.is_blocked(d_c)
                && (!ctx.is_blocked(r_ac) || (!ctx.is_blocked(r_ab) && !ctx.is_blocked(r_bc)));
            if derivable {
                exists += w;
            }
        }
        let complete = (found - exists).abs() < 1e-12;
        complete_flags.push(complete);
        rows.push(vec![
            name.to_string(),
            fm(cost, 4),
            fm(found, 4),
            fm(exists, 4),
            if complete { "yes" } else { "NO" }.to_string(),
        ]);
    }
    r.table(
        "Note-5 DAG {A:-B. B:-C. A:-C.}: cost vs completeness",
        &["strategy", "E[cost]", "Pr[finds]", "Pr[derivable]", "complete?"],
        rows,
    );
    r.note("Υ_AOT correctly refuses the DAG; single-route strategies are cheaper but incomplete —");
    r.note("the redundant-KB optimization problem is NP-hard in general [Gre91]");

    let ok = checked > 50
        && exact_matches == checked
        && upsilon_refuses
        && !complete_flags[0]      // direct-only misses derivations
        && !complete_flags[1]      // long-only misses derivations
        && complete_flags[2]; // all-routes is complete
    r.set_verdict(if ok {
        "REPRODUCED (Υ optimal on every tree; general graphs trade cost for completeness)"
    } else {
        "MISMATCH"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_reproduces() {
        let r = super::run(1010);
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
