//! End-to-end tests: real TCP server on an ephemeral port, real client
//! sockets, responses checked bit-for-bit against direct
//! `QueryProcessor` runs.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use qpl_engine::QueryProcessor;
use qpl_graph::context::RunScratch;
use qpl_serve::wire::JsonValue;
use qpl_serve::{ServeEngine, Server, ServerConfig};
use qpl_workload::generator::KbParams;

const SEED: u64 = 7;

fn layered_params() -> KbParams {
    KbParams::default()
}

/// The query texts the tests serve: every constant of the layered KB,
/// cycled. Some are provable, some are not.
fn query_texts(n: usize) -> Vec<String> {
    let params = layered_params();
    (0..n).map(|i| format!("q0(c{})", i % params.constants)).collect()
}

/// Ground truth straight from the engine, no server involved:
/// `(rendered_answer, cost_bits)` per query.
fn direct_expectations(texts: &[String]) -> Vec<(String, Option<String>, u64)> {
    let mut engine = ServeEngine::layered(SEED, &layered_params());
    let qp = QueryProcessor::left_to_right(&engine.compiled);
    let mut scratch = RunScratch::new(&engine.compiled.graph);
    texts
        .iter()
        .map(|t| {
            let atom =
                qpl_datalog::parser::parse_query(t, &mut engine.table).expect("query parses");
            let answer = qp.run_into(&atom, &engine.db, &mut scratch).expect("query runs");
            let (kind, witness) = match answer {
                qpl_engine::QueryAnswer::Yes(w) => {
                    ("yes".to_string(), Some(w.display(&engine.table).to_string()))
                }
                qpl_engine::QueryAnswer::No => ("no".to_string(), None),
            };
            (kind, witness, scratch.cost().to_bits())
        })
        .collect()
}

fn start(cfg: ServerConfig) -> Server {
    Server::start(ServeEngine::layered(SEED, &layered_params()), cfg).expect("server starts")
}

fn connect(server: &Server) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> JsonValue {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    JsonValue::parse(&resp).expect("response is valid JSON")
}

fn result_fields(result: &JsonValue) -> (String, Option<String>, Option<u64>) {
    let kind = result
        .get("answer")
        .and_then(JsonValue::as_str)
        .or_else(|| result.get("error").and_then(JsonValue::as_str))
        .expect("result has answer or error")
        .to_string();
    let witness = result.get("witness").and_then(JsonValue::as_str).map(str::to_string);
    let cost = result.get("cost").and_then(JsonValue::as_f64).map(f64::to_bits);
    (kind, witness, cost)
}

#[test]
fn ping_stats_and_bad_request_roundtrip() {
    let server = start(ServerConfig::default());
    let (mut s, mut r) = connect(&server);

    let pong = roundtrip(&mut s, &mut r, r#"{"kind":"ping"}"#);
    assert_eq!(pong.get("kind").and_then(JsonValue::as_str), Some("pong"));
    assert_eq!(
        pong.get("v").and_then(JsonValue::as_f64),
        Some(f64::from(qpl_serve::wire::WIRE_VERSION))
    );

    let bad = roundtrip(&mut s, &mut r, r#"{"kind":"query"}"#);
    assert_eq!(bad.get("kind").and_then(JsonValue::as_str), Some("error"));
    assert_eq!(bad.get("error").and_then(JsonValue::as_str), Some("bad_request"));

    let not_json = roundtrip(&mut s, &mut r, "hello");
    assert_eq!(not_json.get("error").and_then(JsonValue::as_str), Some("bad_request"));

    // A malformed *query* is a per-lane error, not a request error.
    let bad_q = roundtrip(&mut s, &mut r, r#"{"kind":"query","q":"q0(("}"#);
    assert_eq!(bad_q.get("kind").and_then(JsonValue::as_str), Some("answer"));
    let (kind, _, _) = result_fields(bad_q.get("result").unwrap());
    assert_eq!(kind, "bad_query");

    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    assert_eq!(stats.get("kind").and_then(JsonValue::as_str), Some("stats"));
    assert!(stats.get("metrics").is_some(), "stats embeds the metrics snapshot");

    server.shutdown();
    server.join();
}

/// The tentpole acceptance test: 200 queries from concurrent client
/// threads, every response bit-identical (answer, witness, cost bits)
/// to a direct scalar `QueryProcessor` run of the same query — at any
/// shard count.
fn concurrent_bit_identity(shards: usize) {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 25;
    let texts = query_texts(THREADS * PER_THREAD);
    let expected = direct_expectations(&texts);

    let server = start(ServerConfig { shards, ..ServerConfig::default() });
    let addr = server.local_addr();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let texts = texts.clone();
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut got = Vec::with_capacity(PER_THREAD);
                for i in 0..PER_THREAD {
                    let qi = t * PER_THREAD + i;
                    let req = format!(r#"{{"kind":"query","q":"{}","id":{qi}}}"#, texts[qi]);
                    let resp = roundtrip(&mut stream, &mut reader, &req);
                    assert_eq!(
                        resp.get("id").and_then(JsonValue::as_f64),
                        Some(qi as f64),
                        "response id echoes the request id"
                    );
                    got.push((qi, result_fields(resp.get("result").expect("answer has result"))));
                }
                got
            })
        })
        .collect();

    let mut answered = 0usize;
    for h in handles {
        for (qi, (kind, witness, cost)) in h.join().expect("client thread") {
            let (exp_kind, exp_witness, exp_cost) = &expected[qi];
            assert_eq!(&kind, exp_kind, "query {}: answer matches scalar run", texts[qi]);
            assert_eq!(&witness, exp_witness, "query {}: witness matches", texts[qi]);
            assert_eq!(
                cost,
                Some(*exp_cost),
                "query {}: cost is bit-identical to the scalar run",
                texts[qi]
            );
            answered += 1;
        }
    }
    assert_eq!(answered, THREADS * PER_THREAD);

    server.shutdown();
    server.join();
}

#[test]
fn concurrent_responses_bit_identical_to_direct_runs() {
    concurrent_bit_identity(1);
}

/// Sharded serving must answer bit-identically to the single-executor
/// path: every shard owns a full replica of the same engine, so the
/// shard a job lands on can never show through in the response.
#[test]
fn sharded_responses_bit_identical_to_direct_runs() {
    concurrent_bit_identity(4);
}

/// Under a queue bound and heavy concurrent batches, every request gets
/// exactly one response: an `answers` payload (correct) or an
/// `overloaded` error. Nothing is silently dropped — at any shard
/// count, with per-shard shedding and least-loaded fallback in play.
fn overload_accounting(shards: usize) {
    const THREADS: usize = 16;
    const BATCHES_PER_THREAD: usize = 8;
    const BATCH: usize = 32;
    let texts = query_texts(BATCH);
    let expected = direct_expectations(&texts);

    let server = start(ServerConfig {
        shards,
        queue_cap: 64, // one plane per shard: concurrent batches contend hard
        max_wait: Duration::from_micros(100),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let qs = texts.iter().map(|t| format!("\"{t}\"")).collect::<Vec<_>>().join(",");
    let req = format!(r#"{{"kind":"batch","qs":[{qs}]}}"#);

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let req = req.clone();
            let expected = expected.clone();
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut served = 0usize;
                let mut shed = 0usize;
                for _ in 0..BATCHES_PER_THREAD {
                    let resp = roundtrip(&mut stream, &mut reader, &req);
                    match resp.get("kind").and_then(JsonValue::as_str) {
                        Some("answers") => {
                            let results = resp
                                .get("results")
                                .and_then(JsonValue::as_array)
                                .expect("answers has results");
                            assert_eq!(results.len(), BATCH, "one result per lane");
                            for (r, (exp_kind, exp_witness, _)) in
                                results.iter().zip(expected.iter())
                            {
                                let (kind, witness, _) = result_fields(r);
                                assert_eq!(&kind, exp_kind);
                                assert_eq!(&witness, exp_witness);
                            }
                            served += 1;
                        }
                        Some("error") => {
                            assert_eq!(
                                resp.get("error").and_then(JsonValue::as_str),
                                Some("overloaded"),
                                "the only in-band refusal under load is `overloaded`"
                            );
                            shed += 1;
                        }
                        other => panic!("unexpected response kind {other:?}"),
                    }
                }
                (served, shed)
            })
        })
        .collect();

    let mut served = 0usize;
    let mut shed = 0usize;
    for h in handles {
        let (s, d) = h.join().expect("client thread");
        served += s;
        shed += d;
    }
    assert_eq!(
        served + shed,
        THREADS * BATCHES_PER_THREAD,
        "every request answered or refused — none dropped"
    );
    assert!(served > 0, "some batches are served even under contention");

    // The server's own books must agree: answered + overloaded == sent.
    let (mut s, mut r) = connect(&server);
    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    let stat = |k: &str| stats.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0) as usize;
    assert_eq!(stat("shed"), shed, "wire-level shed matches refused requests");
    assert_eq!(
        stat("served"),
        served * BATCH,
        "served lanes match answered requests times batch width"
    );

    server.shutdown();
    server.join();
}

#[test]
fn overload_sheds_with_a_response_and_serves_the_rest() {
    overload_accounting(1);
}

#[test]
fn sharded_overload_accounting_holds_under_per_shard_shedding() {
    overload_accounting(3);
}

/// With online adaptation on, answers stay correct while the strategy
/// climbs (costs may legitimately change as the strategy improves, so
/// only the decision is pinned).
#[test]
fn adaptation_keeps_answers_correct() {
    const ROUNDS: usize = 20;
    let texts = query_texts(layered_params().constants);
    let expected = direct_expectations(&texts);

    let server = start(ServerConfig { adapt_delta: Some(0.2), ..ServerConfig::default() });
    let (mut s, mut r) = connect(&server);

    let qs = texts.iter().map(|t| format!("\"{t}\"")).collect::<Vec<_>>().join(",");
    let req = format!(r#"{{"kind":"batch","qs":[{qs}]}}"#);
    for _ in 0..ROUNDS {
        let resp = roundtrip(&mut s, &mut r, &req);
        let results =
            resp.get("results").and_then(JsonValue::as_array).expect("answers has results");
        for (res, (exp_kind, _, _)) in results.iter().zip(expected.iter()) {
            let (kind, _, _) = result_fields(res);
            assert_eq!(&kind, exp_kind, "adaptation never changes the decision");
        }
    }

    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    let served = stats.get("served").and_then(JsonValue::as_f64).unwrap();
    assert_eq!(served as usize, ROUNDS * texts.len());

    server.shutdown();
    server.join();
}

/// Drain must flush every shard: jobs are parked in shard queues (huge
/// flush deadline, planes far from full), then shutdown fires — every
/// admitted job must still get its real, bit-identical answer, at any
/// shard count. The acceptor stays up until the last shard drains, so
/// no client loses its socket mid-drain.
#[test]
fn drain_flushes_every_shard_without_dropping_admitted_jobs() {
    const CLIENTS: usize = 24;
    let texts = query_texts(CLIENTS);
    let expected = direct_expectations(&texts);

    for shards in [1usize, 2, 4] {
        let server = start(ServerConfig {
            shards,
            // Nothing cuts a plane on its own: 1-lane jobs never fill a
            // plane and the deadline is far beyond the test's lifetime.
            max_wait: Duration::from_secs(600),
            ..ServerConfig::default()
        });

        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let addr = server.local_addr();
                let text = texts[i].clone();
                thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    roundtrip(
                        &mut stream,
                        &mut reader,
                        &format!(r#"{{"kind":"query","q":"{text}","id":{i}}}"#),
                    )
                })
            })
            .collect();

        // Wait until all jobs are admitted and parked across the shard
        // queues (the stats control path bypasses admission).
        let (mut s, mut r) = connect(&server);
        let t0 = std::time::Instant::now();
        loop {
            let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
            let queued = stats.get("queue_lanes").and_then(JsonValue::as_f64).unwrap_or(0.0);
            if queued as usize == CLIENTS {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "shards={shards}: only {queued} of {CLIENTS} jobs admitted in time"
            );
            thread::sleep(Duration::from_millis(5));
        }

        server.shutdown();
        for (i, h) in handles.into_iter().enumerate() {
            let resp = h.join().expect("drained client thread");
            assert_eq!(
                resp.get("kind").and_then(JsonValue::as_str),
                Some("answer"),
                "shards={shards}: job {i} admitted before drain must be served, not dropped"
            );
            let (kind, witness, cost) = result_fields(resp.get("result").unwrap());
            let (exp_kind, exp_witness, exp_cost) = &expected[i];
            assert_eq!(&kind, exp_kind, "shards={shards}: drained answer is real");
            assert_eq!(&witness, exp_witness);
            assert_eq!(cost, Some(*exp_cost), "drained answers stay bit-identical");
        }
        server.join();
    }
}

/// The `stats` wire op carries the per-shard breakdown: one entry per
/// shard, every schema field present, per-shard totals summing to the
/// fleet totals.
#[test]
fn stats_schema_covers_per_shard_breakdown() {
    const SHARDS: usize = 3;
    const ROUNDS: usize = 6;
    let texts = query_texts(layered_params().constants);

    let server =
        start(ServerConfig { shards: SHARDS, adapt_delta: Some(0.2), ..ServerConfig::default() });
    let (mut s, mut r) = connect(&server);

    let qs = texts.iter().map(|t| format!("\"{t}\"")).collect::<Vec<_>>().join(",");
    let req = format!(r#"{{"kind":"batch","qs":[{qs}]}}"#);
    for _ in 0..ROUNDS {
        roundtrip(&mut s, &mut r, &req);
    }

    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    assert_eq!(stats.get("kind").and_then(JsonValue::as_str), Some("stats"));
    for key in [
        "queue_lanes",
        "served",
        "batches",
        "shed",
        "errors",
        "climbs",
        "adoptions",
        "steer_fallbacks",
        "fill_ratio",
        "p50_us",
        "p99_us",
    ] {
        assert!(stats.get(key).and_then(JsonValue::as_f64).is_some(), "missing total {key}");
    }
    let shards = stats.get("shards").and_then(JsonValue::as_array).expect("shards array");
    assert_eq!(shards.len(), SHARDS, "one breakdown entry per shard");
    let mut shard_served = 0.0;
    for (i, sh) in shards.iter().enumerate() {
        assert_eq!(sh.get("shard").and_then(JsonValue::as_f64), Some(i as f64));
        for key in [
            "queue_lanes",
            "served",
            "batches",
            "declined",
            "errors",
            "climbs",
            "adoptions",
            "fill_ratio",
            "p50_us",
            "p99_us",
        ] {
            assert!(sh.get(key).and_then(JsonValue::as_f64).is_some(), "shard {i} missing {key}");
        }
        shard_served += sh.get("served").and_then(JsonValue::as_f64).unwrap();
    }
    assert_eq!(
        stats.get("served").and_then(JsonValue::as_f64),
        Some(shard_served),
        "per-shard served sums to the fleet total"
    );
    assert_eq!(shard_served as usize, ROUNDS * texts.len(), "all lanes accounted for");
    let metrics = stats.get("metrics").expect("merged metrics snapshot");
    assert!(
        metrics.get("schema_version").and_then(JsonValue::as_f64).is_some(),
        "metrics is an embedded snapshot object"
    );

    server.shutdown();
    server.join();
}

/// `shutdown` answers `bye`, refuses subsequent work, drains, and
/// `join` returns.
#[test]
fn graceful_shutdown_drains_and_joins() {
    let server = start(ServerConfig::default());
    let (mut s, mut r) = connect(&server);

    let answer = roundtrip(&mut s, &mut r, r#"{"kind":"query","q":"q0(c0)"}"#);
    assert_eq!(answer.get("kind").and_then(JsonValue::as_str), Some("answer"));

    let bye = roundtrip(&mut s, &mut r, r#"{"kind":"shutdown"}"#);
    assert_eq!(bye.get("kind").and_then(JsonValue::as_str), Some("bye"));

    // After the drain flag flips, new submissions are refused in-band.
    // The acceptor may already be gone; a refusal line, a refused
    // connect, and a closed socket are all acceptable once draining.
    if let Ok(mut s2) = TcpStream::connect(server.local_addr()) {
        s2.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut r2 = BufReader::new(s2.try_clone().unwrap());
        let mut line = String::new();
        if s2.write_all(b"{\"kind\":\"query\",\"q\":\"q0(c0)\"}\n").is_ok() {
            if let Ok(n) = r2.read_line(&mut line) {
                if n > 0 {
                    let resp = JsonValue::parse(&line).expect("valid JSON");
                    assert_eq!(
                        resp.get("error").and_then(JsonValue::as_str),
                        Some("shutting_down")
                    );
                }
            }
        }
    }

    server.join();
}

/// Live KB deltas, end to end: an `update` changes answers on every
/// shard, acks report the per-shard applied-delta counter, and `stats`
/// proves the shared-nothing replicas converged (equal counters on all
/// shards).
#[test]
fn updates_change_answers_and_replicas_converge() {
    let server = Server::start(
        ServeEngine::figure1(),
        ServerConfig { shards: 2, ..ServerConfig::default() },
    )
    .expect("server starts");
    let (mut s, mut r) = connect(&server);

    // Not provable yet — and this "no" gets memoized per shard.
    let before = roundtrip(&mut s, &mut r, r#"{"kind":"query","q":"instructor(ada)"}"#);
    let (kind, _, _) = result_fields(before.get("result").unwrap());
    assert_eq!(kind, "no");

    // Insert prof(ada): a footprint predicate, so the memoized "no"
    // must be selectively invalidated on every shard.
    let upd = roundtrip(&mut s, &mut r, r#"{"kind":"update","insert":["prof(ada)"],"id":1}"#);
    assert_eq!(upd.get("kind").and_then(JsonValue::as_str), Some("updated"));
    assert_eq!(upd.get("id").and_then(JsonValue::as_f64), Some(1.0));
    assert_eq!(upd.get("inserted").and_then(JsonValue::as_f64), Some(1.0));
    assert_eq!(upd.get("retracted").and_then(JsonValue::as_f64), Some(0.0));
    assert_eq!(upd.get("deltas_applied").and_then(JsonValue::as_f64), Some(1.0));

    // Every shard must now prove it: sweep more queries than shards so
    // steering cannot hide a stale replica.
    for i in 0..8 {
        let resp = roundtrip(
            &mut s,
            &mut r,
            &format!(r#"{{"kind":"query","q":"instructor(ada)","id":{i}}}"#),
        );
        let (kind, witness, _) = result_fields(resp.get("result").unwrap());
        assert_eq!(kind, "yes", "post-insert query {i}");
        assert_eq!(witness.as_deref(), Some("prof(ada)"), "witness is the retrieved fact");
    }

    // Re-asserting a present fact changes nothing but still counts as
    // an applied delta.
    let redo = roundtrip(&mut s, &mut r, r#"{"kind":"update","insert":["prof(ada)"]}"#);
    assert_eq!(redo.get("inserted").and_then(JsonValue::as_f64), Some(0.0));
    assert_eq!(redo.get("deltas_applied").and_then(JsonValue::as_f64), Some(2.0));

    // Retract it again: answers flip back.
    let ret = roundtrip(&mut s, &mut r, r#"{"kind":"update","retract":["prof(ada)"]}"#);
    assert_eq!(ret.get("retracted").and_then(JsonValue::as_f64), Some(1.0));
    assert_eq!(ret.get("deltas_applied").and_then(JsonValue::as_f64), Some(3.0));
    let after = roundtrip(&mut s, &mut r, r#"{"kind":"query","q":"instructor(ada)"}"#);
    let (kind, _, _) = result_fields(after.get("result").unwrap());
    assert_eq!(kind, "no");

    // Convergence, by the book: every shard's applied-delta counter is
    // equal, and the total is shards × deltas.
    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    let shards = stats.get("shards").and_then(JsonValue::as_array).expect("shards");
    assert_eq!(shards.len(), 2);
    for sh in shards {
        assert_eq!(
            sh.get("deltas_applied").and_then(JsonValue::as_f64),
            Some(3.0),
            "every replica applied every delta"
        );
    }
    assert_eq!(stats.get("deltas_applied").and_then(JsonValue::as_f64), Some(6.0));
    let metrics = stats.get("metrics").expect("metrics snapshot");
    let counters = metrics.get("counters").expect("counters map");
    assert!(
        counters.get("serve.kb.delta.applied").and_then(JsonValue::as_f64).unwrap_or(0.0) >= 6.0,
        "delta counters surface in the merged metrics"
    );
    assert!(counters.get("obs.events_dropped").is_some(), "drop counter always present");

    server.shutdown();
    server.join();
}

/// Invalid deltas are refused atomically: nothing applies, on any
/// shard, and the error names the offending fact.
#[test]
fn invalid_updates_are_refused_without_applying_anything() {
    let server = Server::start(
        ServeEngine::figure1(),
        ServerConfig { shards: 2, ..ServerConfig::default() },
    )
    .expect("server starts");
    let (mut s, mut r) = connect(&server);

    for bad in [
        // Non-ground fact.
        r#"{"kind":"update","insert":["prof(X)"]}"#,
        // Arity mismatch with the stored relation.
        r#"{"kind":"update","insert":["prof(a, b)"]}"#,
        // Valid fact first, invalid later: still all-or-nothing.
        r#"{"kind":"update","insert":["prof(ada)","grad(Y)"]}"#,
        // Unparsable.
        r#"{"kind":"update","retract":["prof(("]}"#,
    ] {
        let resp = roundtrip(&mut s, &mut r, bad);
        assert_eq!(resp.get("kind").and_then(JsonValue::as_str), Some("error"), "{bad}");
        assert_eq!(resp.get("error").and_then(JsonValue::as_str), Some("bad_request"), "{bad}");
    }

    // Nothing was applied anywhere — prof(ada) from the mixed delta
    // must not have landed.
    let q = roundtrip(&mut s, &mut r, r#"{"kind":"query","q":"instructor(ada)"}"#);
    let (kind, _, _) = result_fields(q.get("result").unwrap());
    assert_eq!(kind, "no");
    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    assert_eq!(stats.get("deltas_applied").and_then(JsonValue::as_f64), Some(0.0));

    server.shutdown();
    server.join();
}

/// Deltas on predicates outside the compiled graph's dependency
/// footprint leave every shard's answer memo warm: repeat queries hit
/// the cache across the update, and no selective invalidation fires.
#[test]
fn irrelevant_deltas_keep_the_answer_memo_warm() {
    let server = Server::start(ServeEngine::figure1(), ServerConfig::default()).expect("starts");
    let (mut s, mut r) = connect(&server);

    let q = r#"{"kind":"query","q":"instructor(russ)"}"#;
    let first = roundtrip(&mut s, &mut r, q);
    let (kind, _, cost) = result_fields(first.get("result").unwrap());
    assert_eq!(kind, "yes");

    // Second serve of the same query: memo hit, bit-identical cost.
    let second = roundtrip(&mut s, &mut r, q);
    let (kind2, _, cost2) = result_fields(second.get("result").unwrap());
    assert_eq!(kind2, "yes");
    assert_eq!(cost2, cost, "memoized cost is bit-identical");

    // A delta on a predicate the instructor graph never retrieves.
    let upd = roundtrip(&mut s, &mut r, r#"{"kind":"update","insert":["office(russ, b12)"]}"#);
    assert_eq!(upd.get("kind").and_then(JsonValue::as_str), Some("updated"));

    // Still warm after the irrelevant delta.
    let third = roundtrip(&mut s, &mut r, q);
    let (kind3, _, cost3) = result_fields(third.get("result").unwrap());
    assert_eq!(kind3, "yes");
    assert_eq!(cost3, cost);

    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    let counters = stats.get("metrics").and_then(|m| m.get("counters")).expect("counters");
    assert!(
        counters.get("serve.cache.hits").and_then(JsonValue::as_f64).unwrap_or(0.0) >= 2.0,
        "repeat queries hit the shard memo across the irrelevant delta"
    );
    assert_eq!(
        counters.get("cache.selective_invalidations").and_then(JsonValue::as_f64).unwrap_or(0.0),
        0.0,
        "an out-of-footprint delta never flushes the memo"
    );

    server.shutdown();
    server.join();
}

/// The empty-shard stats path: a server that has served nothing reports
/// finite zero fill ratios (no NaN from a zero plane-capacity
/// denominator), zero deltas, and a complete schema.
#[test]
fn empty_server_stats_are_finite_and_complete() {
    let server = Server::start(
        ServeEngine::figure1(),
        ServerConfig { shards: 3, ..ServerConfig::default() },
    )
    .expect("server starts");
    let (mut s, mut r) = connect(&server);

    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    assert_eq!(stats.get("fill_ratio").and_then(JsonValue::as_f64), Some(0.0));
    assert_eq!(stats.get("deltas_applied").and_then(JsonValue::as_f64), Some(0.0));
    let shards = stats.get("shards").and_then(JsonValue::as_array).expect("shards");
    assert_eq!(shards.len(), 3);
    for sh in shards {
        let fill = sh.get("fill_ratio").and_then(JsonValue::as_f64).expect("finite fill");
        assert_eq!(fill, 0.0, "empty shard fill is 0.0, not NaN");
        assert_eq!(sh.get("deltas_applied").and_then(JsonValue::as_f64), Some(0.0));
    }

    server.shutdown();
    server.join();
}
