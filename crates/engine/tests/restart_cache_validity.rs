//! Cache validity across a crash/restart: a database rebuilt from a
//! snapshot (dumped facts + restored generation stamps, the qpl-store
//! recovery path) must drive the engine's memo caches exactly like the
//! process that never crashed — same hits, same selective
//! invalidations — while a cache from the dead process can never alias
//! the rebuilt instance.

use qpl_datalog::parser::{parse_program, parse_query, parse_query_form};
use qpl_datalog::{Database, Fact, Symbol, SymbolTable, Term};
use qpl_engine::{DependencyFootprint, QueryProcessor, RunCache};
use qpl_graph::compile::{compile, CompileOptions, CompiledGraph};
use qpl_graph::context::RunScratch;

const KB: &str = "instructor(X) :- prof(X).\n\
                  instructor(X) :- grad(X).\n\
                  prof(p0). grad(g0).";

struct Rig {
    table: SymbolTable,
    compiled: CompiledGraph,
    db: Database,
}

fn rig() -> Rig {
    let mut table = SymbolTable::new();
    let program = parse_program(KB, &mut table).expect("KB parses");
    let form = parse_query_form("instructor(b)", &mut table).expect("form parses");
    let compiled =
        compile(&program.rules, &form, &table, &CompileOptions::default()).expect("KB compiles");
    Rig { table, compiled, db: program.facts }
}

fn ground_fact(text: &str, table: &mut SymbolTable) -> Fact {
    let atom = parse_query(text, table).expect("fact parses");
    let args = atom
        .args
        .iter()
        .map(|t| match t {
            Term::Const(s) => *s,
            Term::Var(_) => panic!("dumped fact must be ground: {text}"),
        })
        .collect();
    Fact::new(atom.predicate, args)
}

/// Rebuilds `db` the way recovery does: re-parse the dumped facts into
/// a fresh database, then restore the global and per-predicate
/// generation stamps recorded at checkpoint time.
fn restore_twin(db: &Database, table: &mut SymbolTable) -> Database {
    let facts = db.dump(table);
    let pred_gens: Vec<(Symbol, u64)> = db.predicate_generations().collect();
    let mut twin = Database::new();
    for text in &facts {
        twin.insert(ground_fact(text, table)).expect("dumped fact re-inserts");
    }
    twin.restore_generations(db.generation(), pred_gens);
    twin
}

/// The restored twin and the never-crashed original must make
/// identical cache decisions on an identical post-restart delta
/// sequence: a delta outside the strategy's dependency footprint keeps
/// both memos warm, a footprint delta drops both, and every answer and
/// cost stays bit-identical.
#[test]
fn restored_stamps_preserve_selective_invalidation() {
    let mut r = rig();
    let mut twin = restore_twin(&r.db, &mut r.table);
    let footprint = DependencyFootprint::of_compiled(&r.compiled);
    assert_eq!(
        footprint.generation(&r.db),
        footprint.generation(&twin),
        "restored stamps must reproduce the footprint-scoped generation"
    );

    let qp = QueryProcessor::left_to_right(&r.compiled);
    let mut scratch = RunScratch::new(&r.compiled.graph);
    let queries: Vec<_> = ["p0", "g0", "c0"]
        .iter()
        .map(|c| parse_query(&format!("instructor({c})"), &mut r.table).unwrap())
        .collect();
    let noise = r.table.intern("noise");
    let grad = r.table.intern("grad");
    let c9 = r.table.intern("c9");

    let mut live_cache = RunCache::new();
    let mut twin_cache = RunCache::new();
    // Deltas: the first is outside the footprint (the compiled graph
    // never retrieves `noise`), the second is on a footprint predicate.
    let deltas = [Fact::new(noise, vec![c9]), Fact::new(grad, vec![c9])];
    for delta in &deltas {
        r.db.insert(delta.clone()).unwrap();
        twin.insert(delta.clone()).unwrap();
        for q in &queries {
            let a = qp.run_cost_cached(q, &r.db, &mut live_cache, &mut scratch).unwrap();
            let b = qp.run_cost_cached(q, &twin, &mut twin_cache, &mut scratch).unwrap();
            assert_eq!(a, b, "restored twin must answer bit-identically");
        }
        assert_eq!(
            footprint.generation(&r.db),
            footprint.generation(&twin),
            "stamps must stay in lockstep under post-restart deltas"
        );
    }
    let (live, twin_stats) = (live_cache.stats(), twin_cache.stats());
    assert_eq!(live.hits, twin_stats.hits, "same memo hits on both sides");
    assert_eq!(live.misses, twin_stats.misses, "same memo misses on both sides");
    assert_eq!(live.invalidations, twin_stats.invalidations, "same invalidations on both sides");
    assert_eq!(
        live.invalidations, 1,
        "exactly one invalidation: the noise delta keeps the memo warm, the grad delta drops it"
    );
}

/// A cache filled by the dead process can never serve the rebuilt
/// database, even though the restored generation stamps match — the
/// fresh instance id forces a full drop on first revalidation.
#[test]
fn restored_database_never_aliases_a_foreign_cache() {
    let mut r = rig();
    let qp = QueryProcessor::left_to_right(&r.compiled);
    let mut scratch = RunScratch::new(&r.compiled.graph);
    let q = parse_query("instructor(p0)", &mut r.table).unwrap();

    let mut cache = RunCache::new();
    qp.run_cost_cached(&q, &r.db, &mut cache, &mut scratch).unwrap();
    assert_eq!(cache.len(), 1, "memo filled against the original instance");

    let twin = restore_twin(&r.db, &mut r.table);
    assert_eq!(twin.generation(), r.db.generation(), "stamps alone cannot distinguish the twin");
    assert_ne!(twin.instance_id(), r.db.instance_id(), "instance id must be fresh");
    qp.run_cost_cached(&q, &twin, &mut cache, &mut scratch).unwrap();
    let stats = cache.stats();
    assert_eq!(stats.invalidations, 1, "first twin revalidation drops the foreign memo");
    assert_eq!(stats.hits, 0, "the twin never hits an entry the dead process filled");
}
