//! # qpl — Learning Efficient Query Processing Strategies
//!
//! A Rust reproduction of Russell Greiner's PODS'92 paper
//! *"Learning Efficient Query Processing Strategies"*, which introduced
//! two statistical algorithms for improving the strategy of a
//! satisficing top-down query processor:
//!
//! * **PIB** ("Probably Incrementally Better") — an anytime hill-climber
//!   that accepts a strategy transformation only when sampled evidence
//!   makes it an improvement with probability `≥ 1 − δ`
//!   ([`qpl_core::pib`]).
//! * **PAO** ("Probably Approximately Optimal") — draws enough samples
//!   of each retrieval's success probability to hand an estimated
//!   probability vector to the optimal-strategy algorithm `Υ_AOT`,
//!   yielding a strategy within `ε` of optimal with probability
//!   `≥ 1 − δ` ([`qpl_core::pao`]).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`datalog`] | ground-fact database, Datalog rules, unification, oracle evaluators |
//! | [`graph`] | inference graphs, strategies, contexts, cost model |
//! | [`stats`] | Chernoff/Hoeffding bounds, sequential tests, sample-size formulas |
//! | [`engine`] | fixed-strategy and adaptive query processors, context oracles |
//! | [`core`] | PIB₁, PIB, PALO, PAO, Υ_AOT, transformations, baselines |
//! | [`workload`] | the paper's examples (G_A, G_B, DB₁, DB₂, …) and random generators |
//!
//! ## Quickstart
//!
//! ```
//! use qpl::prelude::*;
//! use rand::SeedableRng;
//!
//! // The paper's Figure-1 knowledge base and query distribution.
//! let paper = qpl::workload::university();
//! let g = paper.graph();
//!
//! // Exact expected costs of the two strategies of Section 2.
//! let dist = paper.section2_distribution();
//! assert!((dist.expected_cost(g, &paper.prof_first) - 2.8).abs() < 1e-9);
//! assert!((dist.expected_cost(g, &paper.grad_first) - 3.7).abs() < 1e-9);
//!
//! // Learn the better strategy from samples with PIB: start grad-first,
//! // and with probability ≥ 0.95 end up prof-first.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut pib = Pib::new(g, paper.grad_first.clone(), PibConfig::new(0.05));
//! for _ in 0..20_000 {
//!     let ctx = dist.sample(&mut rng);
//!     pib.observe(g, &ctx);
//! }
//! assert_eq!(pib.strategy().arcs(), paper.prof_first.arcs());
//! ```

pub use qpl_core as core;
pub use qpl_datalog as datalog;
pub use qpl_engine as engine;
pub use qpl_graph as graph;
pub use qpl_stats as stats;
pub use qpl_workload as workload;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use qpl_core::{
        brute_force_optimal, optimal_strategy, upsilon_aot, Palo, PaloConfig, Pao, PaoConfig,
        PaoMode, Pib, Pib1, Pib1Decision, Pib1Posteriori, PibConfig, SiblingSwap, SmithHeuristic,
        TransformationSet,
    };
    pub use qpl_datalog::{
        parser, Atom, Database, DatalogError, Fact, QueryForm, Rule, RuleBase, SymbolTable, Term,
    };
    pub use qpl_engine::{
        adaptive::AdaptiveQp, classify_context, oracle::QueryMixOracle, ContextOracle, QueryAnswer,
        QueryProcessor, SamplingMode,
    };
    pub use qpl_graph::{
        compile::{compile, CompileOptions, CompiledGraph},
        expected::{ContextDistribution, FiniteDistribution, IndependentModel},
        ArcId, ArcKind, Context, GraphBuilder, GraphError, InferenceGraph, NodeId, RunOutcome,
        Strategy, Trace,
    };
    pub use qpl_stats::{chernoff, BernoulliEstimator, PairedDifference, SequentialSchedule};
}
