//! E18 — tabled evaluation with cross-context answer caching.
//!
//! The paper prices query processing by the work a strategy spends
//! before the satisficing answer (Section 2); on recursive KBs plain SLD
//! re-proves every shared subgoal once per derivation path, so its cost
//! on a layered DAG grows like `width^layers` while a tabled solver's
//! stays polynomial. This experiment measures that gap on the
//! reachability workload and then adds the PR's cross-context cache:
//! Monte-Carlo samples that land in a context class already seen reuse
//! the class's completed tables outright.
//!
//! Three variants answer the same sample stream:
//!
//! * `plain SLD` — the seed's depth-bounded top-down solver;
//! * `tabled` — `solve_tabled`, fresh tables per sample;
//! * `tabled + cache` — `solve_tabled_in` against a per-worker
//!   [`CrossContextCache`] keyed by context class, via
//!   [`batch_fold_scratch`].
//!
//! Every sample's answers are checked against the bottom-up minimal
//! model, and the cached variant is re-run at several worker counts to
//! assert the answers (never the scheduling-dependent cache stats) are
//! worker-count invariant.

use crate::report::{fm, Report};
use qpl_datalog::eval::MinimalModel;
use qpl_datalog::topdown::RetrievalStats;
use qpl_datalog::{Atom, Database, RuleBase, TopDown};
use qpl_engine::cache::CrossContextCache;
use qpl_engine::par::{batch_fold_scratch, sample_rng, ParConfig};
use qpl_workload::generator::{recursive_path_kb, RecursiveKbParams};
use rand::Rng;
use std::time::Instant;

/// One context class: a database carved from the full DAG by a seeded
/// edge mask, plus the ground truth for both probe queries.
struct ContextClass {
    rules: RuleBase,
    db: Database,
    sink_query: Atom,
    far_query: Atom,
    far_reachable: bool,
}

fn build_classes(seed: u64, params: &RecursiveKbParams, n_classes: usize) -> Vec<ContextClass> {
    (0..n_classes)
        .map(|k| {
            // Class 0 is the full DAG; later classes drop ~15% of edges,
            // deterministically from (seed, k).
            let mut mask_rng = sample_rng(seed, k as u64);
            let (mut table, rules, db, sink_query) =
                recursive_path_kb(params, |_, _, _| k == 0 || mask_rng.gen::<f64>() >= 0.15);
            let far = format!("path(n0_0, n{}_{})", params.layers - 1, params.width - 1);
            let far_query =
                qpl_datalog::parser::parse_query(&far, &mut table).expect("probe query parses");
            let truth = MinimalModel::compute(&rules, &db);
            assert!(!truth.holds(&sink_query), "sink is unreachable by construction");
            let far_reachable = truth.holds(&far_query);
            ContextClass { rules, db, sink_query, far_query, far_reachable }
        })
        .collect()
}

/// Answers both probes of one class, checks them against the minimal
/// model, and returns the number of affirmative answers (0 or 1 here,
/// since the sink probe is always negative).
fn check_answers(class: &ContextClass, far: bool, sink: bool) -> u64 {
    assert_eq!(far, class.far_reachable, "tabled answer disagrees with bottom-up model");
    assert!(!sink, "unreachable sink proved reachable");
    u64::from(far)
}

fn run_cached(classes: &[ContextClass], draws: &[usize], workers: usize) -> (u64, RetrievalStats) {
    let cfg = ParConfig { workers, block: 16 };
    let acc = batch_fold_scratch(
        draws.len(),
        &cfg,
        || (0u64, RetrievalStats::default()),
        CrossContextCache::new,
        |acc, cache, i| {
            let class = &classes[draws[i]];
            let solver = TopDown::new(&class.rules, &class.db);
            let mut stats = RetrievalStats::default();
            let store = cache.tables_for(&class.db, draws[i] as u64);
            let far =
                solver.solve_tabled_in(&class.far_query, store, &mut stats).unwrap().is_some();
            let store = cache.tables_for(&class.db, draws[i] as u64);
            let sink =
                solver.solve_tabled_in(&class.sink_query, store, &mut stats).unwrap().is_some();
            acc.0 += check_answers(class, far, sink);
            acc.1.retrievals += stats.retrievals;
            acc.1.reductions += stats.reductions;
            acc.1.table_hits += stats.table_hits;
            acc.1.table_misses += stats.table_misses;
            acc.1.tabled_answers_reused += stats.tabled_answers_reused;
        },
        |acc, part| {
            acc.0 += part.0;
            acc.1.retrievals += part.1.retrievals;
            acc.1.reductions += part.1.reductions;
            acc.1.table_hits += part.1.table_hits;
            acc.1.table_misses += part.1.table_misses;
            acc.1.tabled_answers_reused += part.1.tabled_answers_reused;
        },
    );
    acc
}

/// Runs E18 and returns the report.
pub fn run(seed: u64) -> Report {
    let mut r = Report::new("E18: tabled evaluation + cross-context answer caching");
    let params = RecursiveKbParams { layers: 9, width: 2 };
    let n_classes = 4usize;
    let n_samples = 160usize;
    r.note(format!(
        "layered-DAG reachability, {} layers × width {}; {} context classes, {} samples",
        params.layers, params.width, n_classes, n_samples
    ));
    r.note("probes: path(n0_0, sink) — exhaustive failure — and path(n0_0, far-corner)");
    r.note("every answer checked against the bottom-up minimal model");

    let classes = build_classes(seed, &params, n_classes);
    let draws: Vec<usize> = (0..n_samples)
        .map(|i| sample_rng(seed ^ 0x5eed, i as u64).gen_range(0..n_classes))
        .collect();

    // Variant (a): plain SLD, per-sample fresh everything.
    let t0 = Instant::now();
    let mut plain_yes = 0u64;
    let mut plain_stats = RetrievalStats::default();
    for &k in &draws {
        let class = &classes[k];
        let solver = TopDown::new(&class.rules, &class.db);
        let far = solver
            .solve_with_stats(&class.far_query, &mut plain_stats)
            .expect("within depth bound")
            .is_some();
        let sink = solver
            .solve_with_stats(&class.sink_query, &mut plain_stats)
            .expect("within depth bound")
            .is_some();
        plain_yes += check_answers(class, far, sink);
    }
    let plain_secs = t0.elapsed().as_secs_f64();

    // Variant (b): tabled, fresh tables per sample.
    let t0 = Instant::now();
    let mut tabled_yes = 0u64;
    for &k in &draws {
        let class = &classes[k];
        let solver = TopDown::new(&class.rules, &class.db);
        let far = solver.solve_tabled(&class.far_query).unwrap().is_some();
        let sink = solver.solve_tabled(&class.sink_query).unwrap().is_some();
        tabled_yes += check_answers(class, far, sink);
    }
    let tabled_secs = t0.elapsed().as_secs_f64();

    // Variant (c): tabled + per-worker cross-context cache, serial first
    // (deterministic cache stats), then at higher worker counts to
    // assert answer invariance.
    let t0 = Instant::now();
    let (cached_yes, cached_stats) = run_cached(&classes, &draws, 1);
    let cached_secs = t0.elapsed().as_secs_f64();
    for workers in [2usize, 4] {
        let (yes_w, _) = run_cached(&classes, &draws, workers);
        assert_eq!(yes_w, cached_yes, "answers changed at W={workers}");
    }

    assert_eq!(plain_yes, tabled_yes);
    assert_eq!(plain_yes, cached_yes);

    r.table(
        "per-variant totals over the sample stream",
        &["variant", "yes answers", "retrievals", "reductions", "wall secs"],
        vec![
            vec![
                "plain SLD".into(),
                plain_yes.to_string(),
                plain_stats.retrievals.to_string(),
                plain_stats.reductions.to_string(),
                fm(plain_secs, 4),
            ],
            vec![
                "tabled (fresh tables)".into(),
                tabled_yes.to_string(),
                "—".into(),
                "—".into(),
                fm(tabled_secs, 4),
            ],
            vec![
                "tabled + cross-context cache".into(),
                cached_yes.to_string(),
                cached_stats.retrievals.to_string(),
                cached_stats.reductions.to_string(),
                fm(cached_secs, 4),
            ],
        ],
    );
    r.table(
        "cached variant table traffic (serial run; scheduling-independent)",
        &["table hits", "table misses", "answers reused"],
        vec![vec![
            cached_stats.table_hits.to_string(),
            cached_stats.table_misses.to_string(),
            cached_stats.tabled_answers_reused.to_string(),
        ]],
    );
    r.note(format!(
        "speedup vs plain: tabled {}x, cached {}x (wall-clock; see BENCH_tabling.json for the sized run)",
        fm(plain_secs / tabled_secs.max(1e-12), 1),
        fm(plain_secs / cached_secs.max(1e-12), 1),
    ));

    // Warm samples must answer without touching the database at all:
    // with 4 classes and 160 samples, almost every sample is warm, so
    // cached retrievals must be far below plain's (this is algorithmic,
    // not a timing assertion, so it is CI-stable).
    let ok = cached_stats.retrievals * 10 <= plain_stats.retrievals
        && cached_stats.table_hits > 0
        && cached_stats.tabled_answers_reused > 0;
    r.set_verdict(if ok {
        "REPRODUCED (tabling collapses the exponential re-derivation; warm classes answer from cached tables)"
    } else {
        "MISMATCH (cached variant did not reduce database work as predicted)"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e18_reproduces() {
        let r = super::run(1818);
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
