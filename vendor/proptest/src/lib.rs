//! Offline vendored shim of the `proptest 1.x` API surface this workspace
//! uses: the `proptest!` macro, `prop_assert*` macros, range / tuple /
//! `collection::vec` strategies, and `num::*::ANY`.
//!
//! Differences from upstream: no shrinking (failures report the case index
//! and generated-input seed instead of a minimized counterexample), and the
//! value stream for a given strategy differs from real proptest. Both are
//! acceptable for this repo's property tests, which assert algebraic
//! invariants over many random cases rather than pinned value sequences.

#![forbid(unsafe_code)]

pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub use test_runner::Config as ProptestConfig;

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, __rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body; on failure the case is
/// reported with the formatted message (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 0u64..100, b in -5i32..=5, x in 0.0f64..=1.0) {
            prop_assert!(a < 100);
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.0..=1.0).contains(&x));
        }

        #[test]
        fn tuples_and_vecs(pair in (0u8..3, 0u8..4), v in crate::collection::vec(0u8..6, 0..4)) {
            prop_assert!(pair.0 < 3 && pair.1 < 4);
            prop_assert!(v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 6));
        }

        #[test]
        fn exact_size_vec(v in crate::collection::vec(0.0f64..=1.0, 10)) {
            prop_assert_eq!(v.len(), 10);
        }

        #[test]
        fn any_u64_runs(mask in crate::num::u64::ANY) {
            let _ = mask.count_ones();
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let cfg = crate::test_runner::Config::with_cases(8);
        let mut first = Vec::new();
        crate::test_runner::run_cases(&cfg, "det", |rng| {
            first.push(crate::strategy::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::test_runner::run_cases(&cfg, "det", |rng| {
            second.push(crate::strategy::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_info() {
        let cfg = crate::test_runner::Config::with_cases(4);
        crate::test_runner::run_cases(&cfg, "boom", |_| {
            Err(crate::test_runner::TestCaseError::fail("forced".into()))
        });
    }
}
