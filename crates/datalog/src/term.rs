//! Terms, atoms, and ground facts.
//!
//! The paper's knowledge bases are function-free (footnote 3: "a
//! conjunction of function-free clauses"), so a [`Term`] is either an
//! interned constant or a rule-scoped variable; an [`Atom`] is a predicate
//! applied to terms, and a [`Fact`] is an all-constant atom stored in the
//! [`Database`](crate::Database).

use crate::symbol::{Symbol, SymbolTable};
use std::fmt;

/// A rule- or query-scoped variable, identified by index.
///
/// Variables are meaningful only within a single rule or query; the
/// engine renames them apart before unification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A function-free term: a constant or a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// An interned constant.
    Const(Symbol),
    /// A variable (scoped to its rule or query).
    Var(Var),
}

impl Term {
    /// Whether this term is a constant.
    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Whether this term is a variable.
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The constant symbol, if any.
    pub fn as_const(self) -> Option<Symbol> {
        match self {
            Term::Const(s) => Some(s),
            Term::Var(_) => None,
        }
    }

    /// The variable, if any.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

/// A (possibly non-ground) atomic formula `p(t₁, …, tₙ)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Predicate symbol.
    pub predicate: Symbol,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Constructs an atom.
    pub fn new(predicate: Symbol, args: Vec<Term>) -> Self {
        Self { predicate, args }
    }

    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Whether every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| t.is_const())
    }

    /// Converts to a [`Fact`] if ground.
    pub fn to_fact(&self) -> Option<Fact> {
        let mut args = Vec::with_capacity(self.args.len());
        for t in &self.args {
            args.push(t.as_const()?);
        }
        Some(Fact { predicate: self.predicate, args })
    }

    /// All variables occurring in the atom, in first-occurrence order
    /// (duplicates removed).
    pub fn variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for t in &self.args {
            if let Term::Var(v) = *t {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Renders the atom using `table` for names and `V{i}` for variables.
    pub fn display<'a>(&'a self, table: &'a SymbolTable) -> impl fmt::Display + 'a {
        DisplayAtom { atom: self, table }
    }
}

struct DisplayAtom<'a> {
    atom: &'a Atom,
    table: &'a SymbolTable,
}

impl fmt::Display for DisplayAtom<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.table.name(self.atom.predicate))?;
        for (i, t) in self.atom.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match t {
                Term::Const(s) => write!(f, "{}", self.table.name(*s))?,
                Term::Var(v) => write!(f, "V{}", v.0)?,
            }
        }
        write!(f, ")")
    }
}

/// A ground atomic fact `p(c₁, …, cₙ)` — the unit of database storage and
/// of the paper's "attempted retrieval".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fact {
    /// Predicate symbol.
    pub predicate: Symbol,
    /// Constant arguments.
    pub args: Vec<Symbol>,
}

impl Fact {
    /// Constructs a fact.
    pub fn new(predicate: Symbol, args: Vec<Symbol>) -> Self {
        Self { predicate, args }
    }

    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The equivalent (ground) atom.
    pub fn to_atom(&self) -> Atom {
        Atom::new(self.predicate, self.args.iter().map(|&s| Term::Const(s)).collect())
    }

    /// Renders the fact using `table`.
    pub fn display<'a>(&'a self, table: &'a SymbolTable) -> impl fmt::Display + 'a {
        DisplayFact { fact: self, table }
    }
}

struct DisplayFact<'a> {
    fact: &'a Fact,
    table: &'a SymbolTable,
}

impl fmt::Display for DisplayFact<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.table.name(self.fact.predicate))?;
        for (i, s) in self.fact.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.table.name(*s))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SymbolTable {
        SymbolTable::new()
    }

    #[test]
    fn ground_atom_round_trips_to_fact() {
        let mut t = table();
        let p = t.intern("p");
        let a = t.intern("a");
        let atom = Atom::new(p, vec![Term::Const(a)]);
        assert!(atom.is_ground());
        let fact = atom.to_fact().unwrap();
        assert_eq!(fact.to_atom(), atom);
    }

    #[test]
    fn non_ground_atom_has_no_fact() {
        let mut t = table();
        let p = t.intern("p");
        let atom = Atom::new(p, vec![Term::Var(Var(0))]);
        assert!(!atom.is_ground());
        assert_eq!(atom.to_fact(), None);
    }

    #[test]
    fn variables_deduplicated_in_order() {
        let mut t = table();
        let p = t.intern("p");
        let a = t.intern("a");
        let atom = Atom::new(
            p,
            vec![Term::Var(Var(2)), Term::Const(a), Term::Var(Var(0)), Term::Var(Var(2))],
        );
        assert_eq!(atom.variables(), vec![Var(2), Var(0)]);
    }

    #[test]
    fn display_formats() {
        let mut t = table();
        let p = t.intern("edge");
        let a = t.intern("a");
        let atom = Atom::new(p, vec![Term::Const(a), Term::Var(Var(1))]);
        assert_eq!(atom.display(&t).to_string(), "edge(a, V1)");
        let fact = Fact::new(p, vec![a, a]);
        assert_eq!(fact.display(&t).to_string(), "edge(a, a)");
    }

    #[test]
    fn zero_arity_atoms() {
        let mut t = table();
        let p = t.intern("halt");
        let atom = Atom::new(p, vec![]);
        assert!(atom.is_ground());
        assert_eq!(atom.display(&t).to_string(), "halt()");
    }
}
