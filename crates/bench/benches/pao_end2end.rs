//! Bench: full PAO runs (sampling phase + Υ) vs ε (E7).
//!
//! Tighter ε means quadratically more samples; the bench shows the wall
//! clock of the whole learn-then-optimize pipeline at several accuracy
//! targets (sample counts capped to keep the bench bounded — the cap
//! scales the same way the exact Equation-7 counts do).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpl_core::{Pao, PaoConfig};
use qpl_graph::expected::ContextDistribution;
use qpl_workload::generator::{random_retrieval_model, random_tree_with_retrievals, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_pao(c: &mut Criterion) {
    let mut group = c.benchmark_group("pao_end2end");
    group.sample_size(10);
    let mut gen_rng = StdRng::seed_from_u64(3);
    let g = random_tree_with_retrievals(&mut gen_rng, &TreeParams::default(), 4, 6);
    let truth = random_retrieval_model(&mut gen_rng, &g, (0.05, 0.6));
    for (eps, cap) in [(2.0, 250u64), (1.0, 1000), (0.5, 4000)] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, _| {
            b.iter(|| {
                let mut pao =
                    Pao::new(&g, PaoConfig::theorem2(eps, 0.1).with_sample_cap(cap)).expect("tree");
                let mut rng = StdRng::seed_from_u64(99);
                while !pao.done() {
                    let ctx = truth.sample(&mut rng);
                    pao.observe(&g, &ctx);
                }
                pao.finish(&g).expect("sampling done")
            })
        });
    }
    group.finish();
}

fn bench_adaptive_sampling_only(c: &mut Criterion) {
    let mut gen_rng = StdRng::seed_from_u64(4);
    let g = random_tree_with_retrievals(&mut gen_rng, &TreeParams::default(), 4, 6);
    let truth = random_retrieval_model(&mut gen_rng, &g, (0.05, 0.6));
    let contexts: Vec<_> = (0..1024).map(|_| truth.sample(&mut gen_rng)).collect();
    c.bench_function("adaptive_qp_observe", |b| {
        let needed: Vec<u64> = g.retrievals().map(|_| u64::MAX).collect();
        let mut qp = qpl_engine::AdaptiveQp::for_retrievals(&g, &needed);
        let mut i = 0;
        b.iter(|| {
            let ctx = &contexts[i % contexts.len()];
            i += 1;
            qp.observe(&g, std::hint::black_box(ctx))
        })
    });
    c.bench_function("adaptive_qp_observe_into", |b| {
        let needed: Vec<u64> = g.retrievals().map(|_| u64::MAX).collect();
        let mut qp = qpl_engine::AdaptiveQp::for_retrievals(&g, &needed);
        let mut scratch = qpl_graph::RunScratch::new(&g);
        let mut i = 0;
        b.iter(|| {
            let ctx = &contexts[i % contexts.len()];
            i += 1;
            qp.observe_into(&g, std::hint::black_box(ctx), &mut scratch)
        })
    });
}

criterion_group!(benches, bench_pao, bench_adaptive_sampling_only);
criterion_main!(benches);
