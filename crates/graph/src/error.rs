//! Error type for inference-graph construction and strategy handling.

use std::fmt;

/// Errors from graph construction, strategy validation, or compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An arc referenced a node id that does not exist.
    BadNode(u32),
    /// An arc id was out of range.
    BadArc(u32),
    /// Arc cost must be positive (`f : A → ℝ⁺`).
    NonPositiveCost(String),
    /// The graph is not tree shaped where a tree was required
    /// (the paper's `AOT` class).
    NotTree(String),
    /// A leaf node is not reachable-by-retrieval (dead subtree).
    DeadLeaf(String),
    /// A strategy failed validation.
    InvalidStrategy(String),
    /// A transformation could not be applied to this strategy.
    InapplicableTransform(String),
    /// The rule base cannot be compiled to a (finite, simple) graph.
    Compile(String),
    /// A probability was outside `[0, 1]`.
    BadProbability(f64),
    /// A batch buffer's shape (lane count or arc count) is incompatible
    /// with the graph or request it is being used for.
    BatchShape(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadNode(n) => write!(f, "unknown node id {n}"),
            Self::BadArc(a) => write!(f, "unknown arc id {a}"),
            Self::NonPositiveCost(a) => write!(f, "arc `{a}` must have positive cost"),
            Self::NotTree(m) => write!(f, "graph is not tree shaped: {m}"),
            Self::DeadLeaf(m) => write!(f, "dead leaf: {m}"),
            Self::InvalidStrategy(m) => write!(f, "invalid strategy: {m}"),
            Self::InapplicableTransform(m) => write!(f, "inapplicable transformation: {m}"),
            Self::Compile(m) => write!(f, "cannot compile rule base: {m}"),
            Self::BadProbability(p) => write!(f, "probability {p} outside [0, 1]"),
            Self::BatchShape(m) => write!(f, "incompatible batch shape: {m}"),
        }
    }
}

impl std::error::Error for GraphError {}
