//! Bench: end-to-end Datalog-backed query processing.
//!
//! Measures queries/second through the full stack — query → Note-2
//! context classification (database probes) → strategy execution — on
//! the paper's university KB and on larger layered knowledge bases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpl_datalog::parser::{parse_query, parse_query_form};
use qpl_engine::QueryProcessor;
use qpl_graph::compile::{compile, CompileOptions};
use qpl_workload::generator::{random_layered_kb, KbParams};
use qpl_workload::university;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_university(c: &mut Criterion) {
    let mut u = university();
    let queries = u.section2_queries();
    let qp = QueryProcessor::new(&u.compiled, u.prof_first.clone());
    c.bench_function("qp_university_mix", |b| {
        let mut i = 0;
        b.iter(|| {
            let (q, _) = &queries[i % queries.len()];
            i += 1;
            qp.run(std::hint::black_box(q), &u.db1).expect("valid query")
        })
    });
}

fn bench_layered(c: &mut Criterion) {
    let mut group = c.benchmark_group("qp_layered_kb");
    for layers in [2usize, 4, 6] {
        let mut rng = StdRng::seed_from_u64(layers as u64);
        let params = KbParams { layers, rules_per_layer: 3, ..Default::default() };
        let (mut table, rules, db, root) = random_layered_kb(&mut rng, &params);
        let form = parse_query_form(&format!("{root}(b)"), &mut table).expect("parses");
        let cg = compile(&rules, &form, &table, &CompileOptions::default()).expect("compiles");
        let queries: Vec<_> = (0..16)
            .map(|i| parse_query(&format!("{root}(c{i})"), &mut table).expect("parses"))
            .collect();
        let qp = QueryProcessor::left_to_right(&cg);
        group.bench_with_input(BenchmarkId::from_parameter(layers), &layers, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                qp.run(std::hint::black_box(q), &db).expect("valid query")
            })
        });
    }
    group.finish();
}

fn bench_lazy_vs_eager(c: &mut Criterion) {
    // Eager runs classify every arc up front (probing the database for
    // every retrieval); lazy probes only what the strategy attempts —
    // on a successful first path that is a single probe.
    let mut group = c.benchmark_group("qp_lazy_vs_eager");
    let mut rng = StdRng::seed_from_u64(42);
    let params = KbParams { layers: 4, rules_per_layer: 3, ..Default::default() };
    let (mut table, rules, db, root) = random_layered_kb(&mut rng, &params);
    let form = parse_query_form(&format!("{root}(b)"), &mut table).expect("parses");
    let cg = compile(&rules, &form, &table, &CompileOptions::default()).expect("compiles");
    let queries: Vec<_> = (0..16)
        .map(|i| parse_query(&format!("{root}(c{i})"), &mut table).expect("parses"))
        .collect();
    let qp = QueryProcessor::left_to_right(&cg);
    group.bench_function("eager", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            qp.run(std::hint::black_box(q), &db).expect("valid")
        })
    });
    group.bench_function("lazy", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            qp.run_lazy(std::hint::black_box(q), &db).expect("valid")
        })
    });
    group.finish();
}

fn bench_classification_only(c: &mut Criterion) {
    let mut u = university();
    let queries = u.section2_queries();
    c.bench_function("note2_classification", |b| {
        let mut i = 0;
        b.iter(|| {
            let (q, _) = &queries[i % queries.len()];
            i += 1;
            qpl_engine::classify_context(&u.compiled, std::hint::black_box(q), &u.db1)
                .expect("valid query")
        })
    });
}

criterion_group!(
    benches,
    bench_university,
    bench_layered,
    bench_lazy_vs_eager,
    bench_classification_only
);
criterion_main!(benches);
